"""Property-based tests: the incremental contention engine is bit-exact.

The incremental provider must produce *exactly* the rates of a
rebuild-everything provider after any sequence of flow arrivals and
departures — component-scoped evaluation and snapshot memoization are pure
optimisations, never approximations.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    FairShareModel,
    GigabitEthernetModel,
    IncrementalPenaltyEngine,
    InfinibandModel,
    KimLeeModel,
    MyrinetModel,
    NoContentionModel,
)
from repro.core.graph import Communication, CommunicationGraph
from repro.network.fluid import Transfer
from repro.simulator.providers import ModelRateProvider

MODEL_FACTORIES = [
    GigabitEthernetModel,
    MyrinetModel,
    InfinibandModel,
    NoContentionModel,
    FairShareModel,
    KimLeeModel,
]

# a step is either an arrival on (src, dst) or the departure of the k-th
# oldest live transfer; node universe kept small so conflicts are common but
# Myrinet components stay below its enumeration cap
step_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("del"), st.integers(0, 30), st.integers(0, 0)),
)
sequence_strategy = st.lists(step_strategy, min_size=1, max_size=40)

common_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def apply_steps(steps, max_live=8):
    """Materialise the live transfer list after each step."""
    live = []
    counter = 0
    snapshots = []
    for kind, x, y in steps:
        if kind == "add" and len(live) < max_live:
            if x == y:
                y = (y + 1) % 6  # keep the universe inter-node here; intra-node
                # transfers are covered by the dedicated test below
            live.append(Transfer(transfer_id=counter, src=x, dst=y, size=1000.0))
            counter += 1
        elif kind == "del" and live:
            live.pop(x % len(live))
        snapshots.append(list(live))
    return snapshots


class TestIncrementalEqualsFullRecompute:
    @pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=lambda f: f().name)
    @common_settings
    @given(steps=sequence_strategy)
    def test_rates_bit_exact_across_arrival_departure_sequences(self, factory, steps):
        incremental = ModelRateProvider(factory(), "ethernet", incremental=True)
        full = ModelRateProvider(factory(), "ethernet", incremental=False)
        for active in apply_steps(steps):
            assert incremental.rates(active) == full.rates(active)

    @common_settings
    @given(steps=sequence_strategy)
    def test_instantaneous_penalties_bit_exact(self, steps):
        incremental = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=True)
        full = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=False)
        for active in apply_steps(steps):
            assert incremental.instantaneous_penalties(active) == full.instantaneous_penalties(active)

    @common_settings
    @given(steps=sequence_strategy)
    def test_engine_matches_fresh_graph_evaluation(self, steps):
        """Engine-level check, including intra-node transfers."""
        model = InfinibandModel()
        engine = IncrementalPenaltyEngine(InfinibandModel())
        live = {}
        counter = 0
        for kind, x, y in steps:
            if kind == "add" and len(live) < 8:
                name = f"t{counter}"
                counter += 1
                c = Communication(name, x, y, size=1000)  # x == y stays intra-node
                engine.add(c)
                live[name] = c
            elif kind == "del" and live:
                name = list(live)[x % len(live)]
                engine.remove(name)
                del live[name]
            assert engine.penalties() == model.penalties(CommunicationGraph(live.values()))

    @common_settings
    @given(steps=sequence_strategy)
    def test_component_partition_matches_batch_computation(self, steps):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        live = {}
        counter = 0
        for kind, x, y in steps:
            if kind == "add" and len(live) < 10:
                name = f"t{counter}"
                counter += 1
                c = Communication(name, x, y, size=1000)
                engine.add(c)
                live[name] = c
            elif kind == "del" and live:
                name = list(live)[x % len(live)]
                engine.remove(name)
                del live[name]
            batch = CommunicationGraph(live.values()).conflict_components(
                engine.model.component_rule
            )
            assert engine.components == sorted(batch)
