"""Property-based tests: disabled interference is bit-exact.

The acceptance bar of the interference subsystem: with every injector in
its neutral configuration (zero background intensity, scaling factors of
exactly 1.0) — or with no injectors at all — the execution engine and the
fluid simulator must produce **bit-for-bit** the results of a run that
never heard of injection, over random applications, placements and both
provider families.  Loaded runs must still execute every foreground event
and can only be slower.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.topology import CrossbarTopology
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    LinkDegradationInjector,
    NodeSlowdownInjector,
    Simulator,
)
from repro.simulator.providers import ModelRateProvider
from repro.units import KiB, MB

common_settings = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# the same anti-deadlock round structure the calendar-engine properties use
round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=4),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
    "provider": st.sampled_from(["model", "emulator"]),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="interference-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def make_provider(kind, cluster):
    if kind == "model":
        return ModelRateProvider(GigabitEthernetModel(), "ethernet")
    topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                technology=cluster.technology)
    return EmulatorRateProvider(cluster.technology, topology)


def neutral_injectors(seed=0):
    return (
        BackgroundTrafficInjector(rate=0.0, size=4 * MB, seed=seed),
        BackgroundTrafficInjector(rate=50.0, size=0.0, seed=seed),
        LinkDegradationInjector(factor=1.0, start=0.0, until=10.0),
        NodeSlowdownInjector(factor=1.0, start=0.0, until=10.0),
    )


def run_engine(app, cluster, provider, policy, seed, injectors):
    sim = Simulator(cluster, provider, config=EngineConfig(injectors=injectors))
    placement = make_placement(policy, cluster, app.num_tasks, seed=seed)
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task, sim.last_engine_stats


class TestZeroIntensityBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_neutral_injectors_are_bit_exact_in_the_engine(self, spec):
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        clean = run_engine(
            app, cluster, make_provider(spec["provider"], cluster),
            spec["policy"], spec["seed"], injectors=(),
        )
        neutral = run_engine(
            app, cluster, make_provider(spec["provider"], cluster),
            spec["policy"], spec["seed"], injectors=neutral_injectors(spec["seed"]),
        )
        assert neutral == clean
        assert neutral[2]["injected_events"] == 0

    @common_settings
    @given(spec=workload_strategy)
    def test_loaded_runs_execute_every_foreground_event(self, spec):
        """Interference may reorder time but never the foreground work."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        clean_records, clean_finish, _ = run_engine(
            app, cluster, make_provider(spec["provider"], cluster),
            spec["policy"], spec["seed"], injectors=(),
        )
        injectors = (
            BackgroundTrafficInjector(rate=150.0, size=2 * MB,
                                      seed=spec["seed"], max_flows=10),
            LinkDegradationInjector(factor=0.5, start=0.0, until=0.05),
        )
        loaded_records, loaded_finish, stats = run_engine(
            app, cluster, make_provider(spec["provider"], cluster),
            spec["policy"], spec["seed"], injectors=injectors,
        )

        # interference legitimately reorders completion *times* across ranks,
        # but each rank must still execute exactly its program, in program
        # order — compare the per-rank event streams, not the global one
        def per_rank(records):
            return sorted((r.rank, r.index, r.kind, r.size, r.peer)
                          for r in records)

        assert per_rank(loaded_records) == per_rank(clean_records)
        # note: no makespan monotonicity assert — max-min schedules are not
        # monotone (slowing one flow can reorder completions and finish a
        # staggered workload marginally earlier), so "loaded >= clean" is
        # not an invariant; the deterministic benchmark ladder covers the
        # expected slowdown on realistic intensities instead
        assert set(loaded_finish) == set(clean_finish)
        assert max(loaded_finish.values()) > 0.0
        assert stats["background_flows"] <= 10


class TestZeroIntensityFluid:
    transfers_strategy = st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 40)),
        min_size=1, max_size=10,
    )

    @common_settings
    @given(entries=transfers_strategy,
           provider=st.sampled_from(["model", "emulator"]))
    def test_neutral_injectors_are_bit_exact_in_the_fluid_simulator(
        self, entries, provider
    ):
        transfers = [
            Transfer(i, src, dst, 100_000.0 * ticks, start_time=0.001 * i)
            for i, (src, dst, ticks) in enumerate(entries)
        ]
        cluster = custom_cluster(num_nodes=4, cores_per_node=1,
                                 technology="ethernet")
        clean = FluidTransferSimulator(make_provider(provider, cluster)).run(transfers)
        sim = FluidTransferSimulator(make_provider(provider, cluster),
                                     injectors=neutral_injectors())
        neutral = sim.run(transfers)
        assert neutral == clean
