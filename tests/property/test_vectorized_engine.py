"""Application-level bit-exactness of the vectorized pricing core.

The unit-level suites pin ``penalties_batch`` and the array water-filling;
this one closes the acceptance loop end to end: simulating a random MPI
application with the vectorized providers must produce **identical**
per-rank event streams and finish times as the scalar providers — for the
contention-model side and the calibrated emulator side, under both engine
loops (delta-fed calendar and full re-query), on a clean crossbar and on an
oversubscribed fat tree whose fabric links bind.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel, MyrinetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.topology import CrossbarTopology, FatTreeTopology
from repro.simulator import ANY_SOURCE, Application, EngineConfig, Simulator
from repro.simulator.providers import ModelRateProvider
from repro.units import KiB, MB

common_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=4),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="vectorized-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def run_engine(app, cluster, provider, policy, seed, delta: bool):
    sim = Simulator(cluster, provider, config=EngineConfig(delta_rates=delta))
    placement = make_placement(policy, cluster, app.num_tasks, seed=seed)
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task


class TestVectorizedEngineBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_model_provider_vectorized_scalar_identical(self, spec):
        cluster = custom_cluster(num_nodes=3, cores_per_node=2, technology="ethernet")
        app = build_application(spec)
        outcomes = []
        for delta in (True, False):
            for vectorized in (True, False):
                provider = ModelRateProvider(
                    GigabitEthernetModel(), "ethernet", vectorized=vectorized
                )
                outcomes.append(run_engine(
                    app, cluster, provider, spec["policy"], spec["seed"], delta
                ))
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])

    @common_settings
    @given(spec=workload_strategy)
    def test_myrinet_model_provider_vectorized_scalar_identical(self, spec):
        cluster = custom_cluster(num_nodes=4, cores_per_node=2, technology="myrinet")
        app = build_application(spec)
        outcomes = []
        for vectorized in (True, False):
            provider = ModelRateProvider(
                MyrinetModel(), "myrinet", vectorized=vectorized
            )
            outcomes.append(run_engine(
                app, cluster, provider, spec["policy"], spec["seed"], True
            ))
        assert outcomes[0] == outcomes[1]

    @common_settings
    @given(spec=workload_strategy)
    def test_emulator_provider_vectorized_scalar_identical(self, spec):
        cluster = custom_cluster(num_nodes=3, cores_per_node=2, technology="ethernet")
        app = build_application(spec)
        outcomes = []
        for delta in (True, False):
            for vectorized in (True, False):
                topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                            technology=cluster.technology)
                provider = EmulatorRateProvider(
                    cluster.technology, topology, vectorized=vectorized
                )
                outcomes.append(run_engine(
                    app, cluster, provider, spec["policy"], spec["seed"], delta
                ))
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])

    @common_settings
    @given(spec=workload_strategy)
    def test_emulator_on_loaded_fabric_vectorized_scalar_identical(self, spec):
        """Oversubscribed fat tree: shared uplinks bind, exercising the
        fabric-resource columns of the incidence arrays."""
        cluster = custom_cluster(num_nodes=6, cores_per_node=1, technology="myrinet")
        app = build_application(spec)
        outcomes = []
        for vectorized in (True, False):
            topology = FatTreeTopology(
                num_hosts=cluster.num_nodes, technology=cluster.technology,
                hosts_per_edge=3, uplinks_per_edge=1,
            )
            provider = EmulatorRateProvider(
                cluster.technology, topology, vectorized=vectorized
            )
            outcomes.append(run_engine(
                app, cluster, provider, spec["policy"], spec["seed"], True
            ))
        assert outcomes[0] == outcomes[1]
