"""Property-based tests: the event-calendar engine is bit-exact.

The execution engine advances in-flight transfers through a lazy calendar
of predicted completions, re-timing only the transfers whose rate value
changed — fed either by the provider's delta ``update`` API
(``EngineConfig(delta_rates=True)``, the default) or by re-querying the
full active set every step (``delta_rates=False``, the historical
behaviour).  The two must produce **identical** ``EventRecord`` streams and
finish times for any application, placement and technology, under every
provider (incremental model, full-recompute model, calibrated emulator) —
the delta path is an optimisation, never an approximation.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel, MyrinetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.topology import CrossbarTopology
from repro.simulator import ANY_SOURCE, Application, EngineConfig, Simulator
from repro.simulator.providers import ModelRateProvider
from repro.units import KiB, MB

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# one round = an anti-deadlock matching: every task is endpoint of at most
# one message, so all sends of a round can only pair with recvs of the same
# round (tags disambiguate rounds for wildcard receives, and an eager
# message from a future round can never satisfy an earlier wildcard)
round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=5),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="calendar-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def run_engine(app, cluster, provider, policy, seed, delta: bool):
    sim = Simulator(cluster, provider, config=EngineConfig(delta_rates=delta))
    placement = make_placement(policy, cluster, app.num_tasks, seed=seed)
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task


class TestCalendarEngineBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_delta_and_full_requery_identical_model_provider(self, spec):
        cluster = custom_cluster(num_nodes=3, cores_per_node=2, technology="ethernet")
        app = build_application(spec)
        outcomes = {}
        for delta in (True, False):
            provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
            outcomes[delta] = run_engine(
                app, cluster, provider, spec["policy"], spec["seed"], delta
            )
        assert outcomes[True] == outcomes[False]

    @common_settings
    @given(spec=workload_strategy)
    def test_incremental_and_full_recompute_providers_identical(self, spec):
        """Across providers *and* across loop modes: all four agree."""
        cluster = custom_cluster(num_nodes=4, cores_per_node=2, technology="myrinet")
        app = build_application(spec)
        outcomes = []
        for delta in (True, False):
            for incremental in (True, False):
                provider = ModelRateProvider(
                    MyrinetModel(), "myrinet", incremental=incremental
                )
                outcomes.append(run_engine(
                    app, cluster, provider, spec["policy"], spec["seed"], delta
                ))
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])

    @common_settings
    @given(spec=workload_strategy)
    def test_delta_and_full_requery_identical_emulator_provider(self, spec):
        cluster = custom_cluster(num_nodes=3, cores_per_node=2, technology="ethernet")
        app = build_application(spec)
        outcomes = {}
        for delta in (True, False):
            topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                        technology=cluster.technology)
            provider = EmulatorRateProvider(cluster.technology, topology)
            outcomes[delta] = run_engine(
                app, cluster, provider, spec["policy"], spec["seed"], delta
            )
        assert outcomes[True] == outcomes[False]


class TestRatesOnlyProviderCompatibility:
    def test_engine_runs_on_a_rates_only_provider(self):
        """Third-party providers without update() fall back to full queries."""

        class FairSplit:
            def rates(self, active):
                return {t.transfer_id: 1e8 / len(active) for t in active}

        cluster = custom_cluster(num_nodes=4, cores_per_node=1, technology="ethernet")
        app = Application(num_tasks=2)
        app.add_send(0, 1, 1 * MB)
        app.add_recv(1, 0, 1 * MB)
        sim = Simulator(cluster, FairSplit())
        report = sim.run(app, placement="RRN")
        expected = cluster.technology.latency + (
            1 * MB + cluster.technology.mpi_envelope
        ) / 1e8
        assert report.total_time == pytest.approx(expected, rel=1e-6)
