"""Three-tier delta-handoff equivalence for the *real* rate providers.

PR 8 proved the dict/array handoff tiers bit-exact against scripted test
doubles; this suite closes the loop on the production providers.  Both
:class:`~repro.simulator.providers.ModelRateProvider` (analytical
contention model over the incremental penalty engine) and
:class:`~repro.network.allocator.EmulatorRateProvider` (warm-started
water-filling allocator) speak all three tiers of the delta contract —

* ``update(added, removed) -> dict``            (dict tier)
* ``update_arrays(added, removed)``             (array tier)
* ``update_slots(added, added_slots, removed)`` (slot-handle tier)

— and the tier the calendar picks must never change simulated results:
identical per-rank event streams, finish times, traces and stats (modulo
the strategy counters that *name* the tier taken).  Tier choice is forced
by hiding the faster entry points behind wrappers, since the calendar
discovers tiers with ``getattr``.

Degenerate cases ride along: slot reuse after cancels, transfer-id reuse
(the slot store resets a reused slot's epoch to zero), and zero-rate
stalls whose retry cycle must re-register slot handles rather than
stranding them on the dict path.
"""

from __future__ import annotations

import pytest
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro._numpy import np
from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import Transfer, TransferCalendar
from repro.network.topology import CrossbarTopology
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    Simulator,
)
from repro.simulator.providers import ModelRateProvider
from repro.trace import MemoryTraceSink, assert_traces_equal
from repro.units import KiB, MB

common_settings = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: strategy counters: which handoff tier served a flush (and whether heap
#: entries bulk-merged) names the *strategy*, not the work — everything
#: else in the stats must be identical across tiers
STRATEGY_COUNTERS = ("bulk_merges", "bulk_entries", "handoff_tier_slots",
                     "handoff_tier_arrays", "handoff_tier_dict")

TIERS = ("slots", "arrays", "dict")


# ------------------------------------------------------------ tier forcing
class DictOnly:
    """Expose only the dict tier of a tiered provider.

    The calendar probes ``update_arrays``/``update_slots`` with
    ``getattr``, so hiding them behind a wrapper forces every flush onto
    the dict contract while the inner provider prices identically.
    """

    def __init__(self, inner):
        self.inner = inner

    def update(self, added, removed):
        return self.inner.update(added, removed)

    def reset(self):
        self.inner.reset()


class ArraysOnly(DictOnly):
    """Expose the dict and array tiers, hiding ``update_slots``."""

    def update_arrays(self, added, removed):
        return self.inner.update_arrays(added, removed)


def force_tier(tier, provider):
    if tier == "dict":
        return DictOnly(provider)
    if tier == "arrays":
        return ArraysOnly(provider)
    return provider


def make_provider(kind, cluster):
    if kind == "model":
        return ModelRateProvider(GigabitEthernetModel(), "ethernet")
    topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                technology=cluster.technology)
    return EmulatorRateProvider(cluster.technology, topology)


def strip_strategy(stats_dict):
    for key in STRATEGY_COUNTERS:
        stats_dict.pop(key, None)
    return stats_dict


# --------------------------------------------------------- engine workloads
round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=3),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
    "provider": st.sampled_from(["model", "emulator"]),
    "loaded": st.booleans(),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="provider-tiers-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def run_engine(spec, app, cluster, tier, vectorized, delta=True, trace=None):
    injectors = ()
    if spec["loaded"]:
        injectors = (BackgroundTrafficInjector(
            rate=200.0, size=1 * MB, seed=spec["seed"], max_flows=6),)
    provider = force_tier(tier, make_provider(spec["provider"], cluster))
    sim = Simulator(
        cluster,
        provider,
        config=EngineConfig(delta_rates=delta, vectorized_calendar=vectorized,
                            injectors=injectors),
        trace=trace,
    )
    placement = make_placement(spec["policy"], cluster, app.num_tasks,
                               seed=spec["seed"])
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task, sim.last_engine_stats


def comparable(outcome):
    records, finish, stats = outcome
    return records, finish, strip_strategy(stats.as_dict())


class TestEngineTierEquivalence:
    @common_settings
    @given(spec=workload_strategy)
    def test_every_tier_matches_the_scalar_dict_run(self, spec):
        """Slot, array and dict handoffs all reproduce the scalar run —
        per-rank records, finish times and work counters — for both real
        providers, clean and under background-traffic load."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        scalar = run_engine(spec, app, cluster, "slots", vectorized=False)
        for tier in TIERS:
            outcome = run_engine(spec, app, cluster, tier, vectorized=True)
            assert comparable(outcome) == comparable(scalar), tier
            if tier == "slots":
                # the real providers must actually *ride* the top tier:
                # untraced+unscaled flushes never fall through to dict
                stats = outcome[2].as_dict()
                assert stats["handoff_tier_dict"] == 0
                if stats["flushes"]:
                    assert stats["handoff_tier_slots"] > 0
        # full re-query agrees on the simulated results (stats legitimately
        # differ: no delta bookkeeping at all)
        full = run_engine(spec, app, cluster, "slots", vectorized=True,
                          delta=False)
        assert full[:2] == scalar[:2]

    @common_settings
    @given(spec=workload_strategy)
    def test_traced_runs_stay_on_the_dict_tier_and_agree(self, spec):
        """A trace sink pins both calendars to the dict tier; the
        slot-capable provider's trace is record-for-record the trace of a
        dict-only scalar run."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        scalar_sink = MemoryTraceSink()
        scalar = run_engine(spec, app, cluster, "dict", vectorized=False,
                            trace=scalar_sink)
        array_sink = MemoryTraceSink()
        arrays = run_engine(spec, app, cluster, "slots", vectorized=True,
                            trace=array_sink)
        assert arrays[:2] == scalar[:2]
        stats = arrays[2].as_dict()
        assert stats["handoff_tier_slots"] == 0
        assert stats["handoff_tier_arrays"] == 0
        assert_traces_equal(array_sink.log(), scalar_sink.log(),
                            label_a="slot-capable", label_b="dict-only")


# ------------------------------------------------- calendar-level degenerates
def churn_cluster():
    return custom_cluster(num_nodes=4, cores_per_node=1,
                          technology="ethernet")


def tier_calendar(kind, tier, vectorized, wrap=None):
    provider = make_provider(kind, churn_cluster())
    if wrap is not None:
        provider = wrap(provider)
    return TransferCalendar(force_tier(tier, provider), delta=True,
                            vectorized=vectorized)


def tier_matrix(kind, run, wrap=None):
    """Run ``run(calendar)`` on all three vectorized tiers + the scalar
    calendar and assert the outcomes identical."""
    scalar = run(tier_calendar(kind, "dict", vectorized=False, wrap=wrap))
    for tier in TIERS:
        outcome = run(tier_calendar(kind, tier, vectorized=True, wrap=wrap))
        assert outcome == scalar, (kind, tier)
    return scalar


def comparable_calendar(calendar):
    return strip_strategy(calendar.stats.freeze().as_dict())


PROVIDER_KINDS = ("model", "emulator")


class TestCalendarTierDegenerates:
    @pytest.mark.parametrize("kind", PROVIDER_KINDS)
    def test_slot_reuse_after_cancel(self, kind):
        """Churn with mid-run completions and cancels: freed slots are
        LIFO-reused by later arrivals while the provider's slot mirror (and
        the allocator's incidence buckets) keep up."""
        def run(calendar):
            num_flights, rounds = 18, 9
            for i in range(num_flights):
                size = 1e11 if i % 2 == 0 else 1e6 * (1 + i % 5)
                calendar.activate(Transfer(i, i % 3, 3, size), now=0.0)
            calendar.flush(0.0)
            done = []
            for r in range(rounds):
                now = 10.0 * (r + 1)
                calendar.cancel(2 * r, now)  # even ids never complete
                calendar.activate(
                    Transfer(num_flights + r, r % 3, 3, 1e6 * (1 + r % 3)),
                    now=now)
                calendar.flush(now)
                done.extend(t.transfer_id for t in calendar.pop_due(now))
            for i in range(rounds, num_flights // 2):
                calendar.cancel(2 * i, 100.0)
            calendar.flush(100.0)
            done.extend(t.transfer_id for t in calendar.pop_due(1e7))
            return done, comparable_calendar(calendar)

        done, _ = tier_matrix(kind, run)
        assert done  # the small flights really did complete mid-run

    @pytest.mark.parametrize("kind", PROVIDER_KINDS)
    def test_transfer_id_reuse_resets_the_slot_epoch(self, kind):
        """Re-activating a completed transfer id restarts its epoch at
        zero in a (possibly reused) slot; stale heap entries of the first
        incarnation must not fire for the second on any tier."""
        def run(calendar):
            for i in range(6):
                calendar.activate(Transfer(i, i % 3, 3, 2e6 * (1 + i % 2)),
                                  now=0.0)
            calendar.flush(0.0)
            # rate churn before completion: bump epochs so stale entries
            # exist in the heap when the ids come back
            calendar.cancel(5, 0.001)
            calendar.flush(0.001)
            done = [t.transfer_id for t in calendar.pop_due(1e5)]
            # same ids, second incarnation (slot store hands back the
            # freed slots, epochs restart at zero)
            for i in range(6):
                calendar.activate(Transfer(i, i % 3, 3, 1e6 * (1 + i % 3)),
                                  now=1e5)
            calendar.flush(1e5)
            done.extend(t.transfer_id for t in calendar.pop_due(1e9))
            return done, comparable_calendar(calendar)

        tier_matrix(kind, run)


class StallFirstFlush:
    """Zero every rate of the first delta on all three tiers.

    The inner provider tracks the flow set normally; only the first
    returned pricing is forced to zero, so every flight stalls and the
    calendar's retry cycle (departure + re-arrival of the whole stalled
    set) must run — through the slot path when the tier allows, where it
    has to re-register each flight's slot handle.
    """

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def _zeroing(self):
        self.calls += 1
        return self.calls == 1

    def update(self, added, removed):
        changed = self.inner.update(added, removed)
        if self._zeroing():
            return {tid: 0.0 for tid in changed}
        return changed

    def update_arrays(self, added, removed):
        tids, rates = self.inner.update_arrays(added, removed)
        if self._zeroing():
            rates = np.zeros_like(rates)
        return tids, rates

    def update_slots(self, added, added_slots, removed):
        tids, slots, rates = self.inner.update_slots(added, added_slots,
                                                     removed)
        if self._zeroing():
            rates = np.zeros_like(rates)
        return tids, slots, rates

    def reset(self):
        self.inner.reset()


class TestZeroRateStallRetry:
    @pytest.mark.parametrize("kind", PROVIDER_KINDS)
    def test_stall_retry_rides_the_slot_path(self, kind):
        """A first flush pricing everything at zero stalls the whole set;
        the retry on the next flush re-prices through the same tier the
        run speaks — and on the slot tier the re-add re-seeds every
        handle, so later slot flushes still find the mirror intact."""
        def run(calendar):
            for i in range(6):
                calendar.activate(Transfer(i, i % 3, 3, 1e6 * (1 + i)),
                                  now=0.0)
            # call 1 zeroes everything; the same flush then retries the
            # stalled set (call 2, real rates) through its handoff tier
            calendar.flush(0.0)
            assert calendar.stats.stall_retries == 6
            assert calendar.next_time() is not None
            # a later arrival exercises the post-retry handoff
            calendar.activate(Transfer(99, 0, 3, 5e5), now=1.0)
            calendar.flush(1.0)
            done = [t.transfer_id for t in calendar.pop_due(1e9)]
            return done, comparable_calendar(calendar)

        tier_matrix(kind, run, wrap=StallFirstFlush)


class TestRateScaleTierRecovery:
    @pytest.mark.parametrize("kind", PROVIDER_KINDS)
    def test_slot_counter_recovers_after_a_scale_window(self, kind):
        """Regression for the permanent-downgrade bug: a rate-scale window
        skips the slot tier (here to the array tier — the real providers
        speak both), and the reprice that clears the scale re-seeds the
        slot handles so the counter climbs again."""
        calendar = tier_calendar(kind, "slots", vectorized=True)
        for i in range(6):
            calendar.activate(Transfer(i, i % 3, 3, 1e10), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.handoff_tier_slots == 1
        calendar.set_rate_scale(lambda transfer: 0.5)
        calendar.reprice(1.0)
        calendar.activate(Transfer(6, 0, 3, 1e10), now=1.0)
        calendar.flush(1.0)
        # the window ran on the array tier, never dict, never slots
        assert calendar.stats.handoff_tier_slots == 1
        assert calendar.stats.handoff_tier_arrays == 2
        assert calendar.stats.handoff_tier_dict == 0
        calendar.set_rate_scale(None)
        calendar.reprice(2.0)
        assert calendar.stats.handoff_tier_slots == 2
        calendar.activate(Transfer(7, 1, 3, 1e10), now=2.0)
        calendar.flush(2.0)
        assert calendar.stats.handoff_tier_slots == 3
        assert calendar.active_count == 8
