"""Property-based tests of the rate-provider delta contract.

``update(added, removed)`` must be a pure optimisation over the full-set
``rates()`` call: after *any* sequence of deltas, the rates accumulated
from the ``update`` returns (apply changed entries, drop removed ids) must
equal — bit for bit — what a cold provider reports for the final active
set, and at every intermediate step the shim ``rates()`` of the same
provider must agree with the accumulated state.  Both shipped providers
(contention model and calibrated emulator) are covered.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import GigabitEthernetModel, InfinibandModel, MyrinetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import Transfer
from repro.network.technologies import get_technology
from repro.simulator.providers import ModelRateProvider

MODEL_FACTORIES = [GigabitEthernetModel, MyrinetModel, InfinibandModel]

# arrivals on (src, dst) in a small host universe (conflicts are common),
# departures of the k-th oldest live transfer; intra-node pairs allowed
step_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("del"), st.integers(0, 30), st.integers(0, 0)),
)
sequence_strategy = st.lists(step_strategy, min_size=1, max_size=30)

common_settings = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def deltas(steps, max_live=8):
    """Turn a step sequence into (added, removed, live-after) triples."""
    live = {}
    counter = 0
    out = []
    for kind, x, y in steps:
        if kind == "add" and len(live) < max_live:
            transfer = Transfer(transfer_id=counter, src=x, dst=y, size=1000.0)
            live[counter] = transfer
            counter += 1
            out.append(([transfer], [], dict(live)))
        elif kind == "del" and live:
            tid = list(live)[x % len(live)]
            del live[tid]
            out.append(([], [tid], dict(live)))
    return out


def check_provider_sequence(provider, cold_factory, steps):
    accumulated = {}
    for added, removed, live in deltas(steps):
        changed = provider.update(added, removed)
        for tid in removed:
            accumulated.pop(tid, None)
        accumulated.update(changed)
        assert set(accumulated) == set(live)
        # a cold provider pricing the final set from scratch must agree
        cold = cold_factory().rates(list(live.values()))
        assert accumulated == cold


class TestModelProviderDeltaContract:
    @pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=lambda f: f().name)
    @common_settings
    @given(steps=sequence_strategy)
    def test_update_accumulates_to_cold_rates(self, factory, steps):
        provider = ModelRateProvider(factory(), "ethernet")
        check_provider_sequence(
            provider, lambda: ModelRateProvider(factory(), "ethernet"), steps
        )

    @common_settings
    @given(steps=sequence_strategy)
    def test_full_recompute_mode_honours_the_contract_too(self, steps):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet",
                                     incremental=False)
        check_provider_sequence(
            provider,
            lambda: ModelRateProvider(GigabitEthernetModel(), "ethernet",
                                      incremental=False),
            steps,
        )

    @common_settings
    @given(steps=sequence_strategy)
    def test_shim_rates_agree_with_update_stream(self, steps):
        delta_provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        shim_provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        accumulated = {}
        for added, removed, live in deltas(steps):
            changed = delta_provider.update(added, removed)
            for tid in removed:
                accumulated.pop(tid, None)
            accumulated.update(changed)
            assert shim_provider.rates(list(live.values())) == accumulated


class TestEmulatorProviderDeltaContract:
    @common_settings
    @given(steps=sequence_strategy)
    def test_update_accumulates_to_cold_rates(self, steps):
        """Without warm starts the delta stream is bit-exact with cold solves."""
        technology = get_technology("ethernet")
        provider = EmulatorRateProvider(technology, num_hosts=6, warm_start=False)
        check_provider_sequence(
            provider,
            lambda: EmulatorRateProvider(technology, num_hosts=6, warm_start=False),
            steps,
        )

    @common_settings
    @given(steps=sequence_strategy)
    def test_warm_started_updates_match_cold_rates_numerically(self, steps):
        """The warm-started production path covers the same transfers and is
        exact up to floating-point summation order (the component re-solve
        documented in repro.network.allocator)."""
        technology = get_technology("ethernet")
        provider = EmulatorRateProvider(technology, num_hosts=6)
        accumulated = {}
        for added, removed, live in deltas(steps):
            changed = provider.update(added, removed)
            for tid in removed:
                accumulated.pop(tid, None)
            accumulated.update(changed)
            assert set(accumulated) == set(live)
            cold = EmulatorRateProvider(technology, num_hosts=6).rates(
                list(live.values())
            )
            assert accumulated == pytest.approx(cold, rel=1e-9)

    @common_settings
    @given(steps=sequence_strategy)
    def test_unreported_transfers_kept_their_rate(self, steps):
        """The heart of the calendar's laziness: a transfer absent from an
        update() return must have exactly its previous rate."""
        technology = get_technology("myrinet")
        provider = EmulatorRateProvider(technology, num_hosts=6, warm_start=False)
        previous = {}
        for added, removed, live in deltas(steps):
            changed = provider.update(added, removed)
            fresh = EmulatorRateProvider(
                technology, num_hosts=6, warm_start=False
            ).rates(list(live.values()))
            for tid, rate in fresh.items():
                if tid not in changed:
                    assert previous[tid] == rate
            previous = fresh


class TestDeltaErrors:
    def test_removing_unknown_transfer_fails(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        with pytest.raises(Exception):
            provider.update([], [42])

    def test_double_add_fails(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        t = Transfer(transfer_id=0, src=0, dst=1, size=10.0)
        provider.update([t], [])
        with pytest.raises(Exception):
            provider.update([t], [])

    def test_reset_clears_tracking_but_not_the_memo(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        transfers = [Transfer(transfer_id=i, src=0, dst=i + 1, size=10.0)
                     for i in range(2)]
        provider.update(transfers, [])
        provider.reset()
        assert provider.rates(transfers)  # re-adding after reset works
        assert provider.stats.cache_hits >= 1  # memoized situation survived