"""Application-level bit-exactness of the vectorized calendar bookkeeping.

The structure-of-arrays :class:`~repro.network.fluid.TransferCalendar`
(``vectorized=True``) batches rate application, integration and re-timing
through numpy and bulk-merges heap entries; this suite closes the
acceptance loop: simulating a random MPI application with the array
calendar must produce **identical** per-rank event streams, finish times,
calendar stats and — record for record — identical traces as the scalar
calendar, across vectorized×delta for the contention-model and emulator
provider families, on a clean fabric and under background-traffic load.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import custom_cluster, make_placement
from repro.core import GigabitEthernetModel
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.topology import CrossbarTopology
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    Simulator,
)
from repro.simulator.providers import ModelRateProvider
from repro.trace import MemoryTraceSink, assert_traces_equal
from repro.units import KiB, MB

common_settings = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

round_strategy = st.fixed_dictionaries({
    "pairs": st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans(),
                  st.booleans()),
        min_size=1, max_size=3,
    ),
    "computes": st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=3
    ),
    "barrier": st.booleans(),
})
workload_strategy = st.fixed_dictionaries({
    "num_tasks": st.integers(2, 6),
    "rounds": st.lists(round_strategy, min_size=1, max_size=4),
    "policy": st.sampled_from(["RRN", "RRP", "random"]),
    "seed": st.integers(0, 3),
    "provider": st.sampled_from(["model", "emulator"]),
    "loaded": st.booleans(),
})


def build_application(spec) -> Application:
    num_tasks = spec["num_tasks"]
    app = Application(num_tasks=num_tasks, name="vectorized-calendar-prop")
    for round_no, round_spec in enumerate(spec["rounds"]):
        tag = round_no + 1
        busy = set()
        for rank, ticks in round_spec["computes"]:
            app.add_compute(rank % num_tasks, duration=ticks * 0.0125)
        for a, b, large, wildcard in round_spec["pairs"]:
            src, dst = a % num_tasks, b % num_tasks
            if src == dst:
                dst = (dst + 1) % num_tasks
            if src in busy or dst in busy:
                continue
            busy.update((src, dst))
            size = 2 * MB if large else 4 * KiB
            app.add_send(src, dst, size, tag=tag)
            app.add_recv(dst, ANY_SOURCE if wildcard else src, size, tag=tag)
        if round_spec["barrier"]:
            app.add_barrier()
    return app


def make_provider(kind, cluster):
    if kind == "model":
        return ModelRateProvider(GigabitEthernetModel(), "ethernet")
    topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                technology=cluster.technology)
    return EmulatorRateProvider(cluster.technology, topology)


def run_engine(spec, app, cluster, delta, vectorized, trace=None):
    injectors = ()
    if spec["loaded"]:
        injectors = (BackgroundTrafficInjector(
            rate=200.0, size=1 * MB, seed=spec["seed"], max_flows=6),)
    sim = Simulator(
        cluster,
        make_provider(spec["provider"], cluster),
        config=EngineConfig(delta_rates=delta, vectorized_calendar=vectorized,
                            injectors=injectors),
        trace=trace,
    )
    placement = make_placement(spec["policy"], cluster, app.num_tasks,
                               seed=spec["seed"])
    report = sim.run(app, placement=placement)
    return report.records, report.finish_time_per_task, sim.last_engine_stats


#: strategy counters: the scalar path never bulk-merges, and only the
#: vectorized untraced path engages the array/slot handoff tiers, so these
#: legitimately differ between the paths — every *work* counter (flushes,
#: retimed, completions, compactions, stale entries, ...) must not
STRATEGY_COUNTERS = ("bulk_merges", "bulk_entries", "handoff_tier_slots",
                     "handoff_tier_arrays", "handoff_tier_dict")


def comparable(outcome):
    records, finish, stats = outcome
    flat = stats.as_dict()
    for key in STRATEGY_COUNTERS:
        flat.pop(key, None)
    return records, finish, flat


class TestVectorizedCalendarBitExact:
    @common_settings
    @given(spec=workload_strategy)
    def test_results_and_stats_identical(self, spec):
        """Array and scalar calendars agree on records, finish times and
        stats, for both engine loops (delta-fed and full re-query)."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        outcomes = []
        for delta in (True, False):
            for vectorized in (True, False):
                outcomes.append(
                    run_engine(spec, app, cluster, delta, vectorized)
                )
        # scalar vs array within each loop mode (stats included: the array
        # bookkeeping does the same number of flushes/retimes/completions);
        # across loop modes only the simulated results must agree
        assert comparable(outcomes[0]) == comparable(outcomes[1])
        assert comparable(outcomes[2]) == comparable(outcomes[3])
        assert outcomes[0][:2] == outcomes[2][:2]

    @common_settings
    @given(spec=workload_strategy)
    def test_traces_identical_record_for_record(self, spec):
        """The array calendar's trace — stall/retime interleaving included —
        is record-for-record the scalar calendar's trace."""
        cluster = custom_cluster(num_nodes=3, cores_per_node=2,
                                 technology="ethernet")
        app = build_application(spec)
        scalar_sink = MemoryTraceSink()
        scalar = run_engine(spec, app, cluster, True, False, trace=scalar_sink)
        array_sink = MemoryTraceSink()
        arrays = run_engine(spec, app, cluster, True, True, trace=array_sink)
        assert arrays[:2] == scalar[:2]
        assert_traces_equal(array_sink.log(), scalar_sink.log(),
                            label_a="vectorized", label_b="scalar")

    @common_settings
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(1, 40)),
            min_size=1, max_size=12,
        ),
        provider=st.sampled_from(["model", "emulator"]),
    )
    def test_fluid_simulator_vectorized_scalar_identical(self, entries, provider):
        """The standalone fluid loop: results and calendar stats agree."""
        transfers = [
            Transfer(i, src, dst, 100_000.0 * ticks, start_time=0.001 * i)
            for i, (src, dst, ticks) in enumerate(entries)
        ]
        cluster = custom_cluster(num_nodes=4, cores_per_node=1,
                                 technology="ethernet")
        scalar_sim = FluidTransferSimulator(make_provider(provider, cluster),
                                            vectorized=False)
        scalar = scalar_sim.run(transfers)
        array_sim = FluidTransferSimulator(make_provider(provider, cluster),
                                           vectorized=True)
        arrays = array_sim.run(transfers)
        assert arrays == scalar
        scalar_stats = scalar_sim.last_calendar_stats.as_dict()
        array_stats = array_sim.last_calendar_stats.as_dict()
        for key in STRATEGY_COUNTERS:
            scalar_stats.pop(key, None)
            array_stats.pop(key, None)
        assert array_stats == scalar_stats
