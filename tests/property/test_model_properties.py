"""Property-based tests (hypothesis) on the contention models and core invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import (
    FairShareModel,
    GigabitEthernetModel,
    InfinibandModel,
    KimLeeModel,
    MyrinetModel,
    NoContentionModel,
)
from repro.core.graph import CommunicationGraph
from repro.core.myrinet_model import maximal_independent_sets
from repro.units import MB

MODELS = [
    GigabitEthernetModel(),
    MyrinetModel(),
    InfinibandModel(),
    NoContentionModel(),
    FairShareModel(),
    KimLeeModel(),
]

# strategy: a list of distinct directed edges over a small node universe
edge_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=10,
    unique=True,
)

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def graph_from_edges(edges):
    return CommunicationGraph.from_edges(list(edges), size=4 * MB)


class TestPenaltyInvariants:
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @common_settings
    @given(edges=edge_strategy)
    def test_penalties_are_at_least_one_and_finite(self, model, edges):
        graph = graph_from_edges(edges)
        penalties = model.penalties(graph)
        assert set(penalties) == set(graph.names)
        for value in penalties.values():
            assert value >= 1.0
            assert value < 1e6

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @common_settings
    @given(edges=edge_strategy)
    def test_penalties_do_not_depend_on_message_size(self, model, edges):
        """The paper's penalties are size-free ratios; only the graph matters."""
        small = CommunicationGraph.from_edges(list(edges), size=1 * MB)
        large = CommunicationGraph.from_edges(list(edges), size=16 * MB)
        assert model.penalties(small) == pytest.approx(model.penalties(large))

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @common_settings
    @given(edges=edge_strategy)
    def test_isolated_communication_is_never_penalised(self, model, edges):
        """Adding a communication between two fresh nodes gets penalty 1."""
        graph = CommunicationGraph.from_edges(list(edges), size=4 * MB)
        graph.add_edge(50, 51, size=4 * MB, name="isolated")
        assert model.penalties(graph)["isolated"] == pytest.approx(1.0)

    @common_settings
    @given(edges=edge_strategy)
    def test_ethernet_penalty_bounded_by_degree(self, edges):
        """p = max(po, pi) <= max(Δo, Δi) · β · (1 + γ·Δ) — a loose sanity bound."""
        graph = graph_from_edges(edges)
        model = GigabitEthernetModel()
        params = model.parameters
        penalties = model.penalties(graph)
        for comm in graph:
            delta = max(graph.delta_o(comm), graph.delta_i(comm))
            bound = max(1.0, delta * params.beta * (1 + max(params.gamma_o, params.gamma_i) * delta))
            assert penalties[comm.name] <= bound + 1e-9

    @common_settings
    @given(edges=edge_strategy)
    def test_myrinet_penalty_bounded_by_state_set_count(self, edges):
        graph = graph_from_edges(edges)
        model = MyrinetModel(max_component_size=12)
        try:
            analysis = model.analyse(graph)
        except Exception:
            return  # component larger than the cap: not the property under test
        for name, penalty in analysis.penalties.items():
            assert penalty <= analysis.num_state_sets + 1e-9
            assert analysis.adjusted_emission[name] >= 1

    @common_settings
    @given(edges=edge_strategy)
    def test_myrinet_worst_penalty_covers_the_most_loaded_nic(self, edges):
        """At the most loaded NIC (degree D), at most one of its D communications
        can send per state set, so the slowest of them is penalised by at least D —
        the Stop & Go model can never be globally below ideal fair sharing."""
        graph = graph_from_edges(edges)
        myrinet = MyrinetModel(max_component_size=12)
        try:
            myrinet_penalties = myrinet.penalties(graph)
        except Exception:
            return
        fair = FairShareModel().penalties(graph)
        assert max(myrinet_penalties.values()) >= max(fair.values()) - 1e-9


class TestMaximalIndependentSetProperties:
    @common_settings
    @given(edges=edge_strategy)
    def test_enumeration_is_complete_and_sound(self, edges):
        graph = graph_from_edges(edges)
        adjacency = graph.conflict_adjacency()
        sets = maximal_independent_sets(adjacency)
        assert sets
        seen = set()
        for candidate in sets:
            assert candidate not in seen, "no duplicates"
            seen.add(candidate)
            for vertex in candidate:
                assert not (adjacency[vertex] & candidate), "independence"
            for outside in set(adjacency) - set(candidate):
                assert adjacency[outside] & candidate, "maximality"

    @common_settings
    @given(edges=edge_strategy)
    def test_every_vertex_appears_in_some_set(self, edges):
        graph = graph_from_edges(edges)
        adjacency = graph.conflict_adjacency()
        sets = maximal_independent_sets(adjacency)
        covered = set().union(*sets) if sets else set()
        assert covered == set(adjacency)
