"""Property tests: array water-filling is bit-exact with the scalar loop.

:func:`repro.network.sharing.weighted_max_min_allocation` has two
implementations behind one toggle — the historical dict-walking freeze loop
(``vectorized=False``) and the incidence-array path (``vectorized=True``).
Their contract is strict bit-exactness on arbitrary inputs (see the module
docstring of :mod:`repro.network.sharing` for why the float operation order
matches), which these tests assert over random flow/capacity instances and,
one level up, over random delta sequences through the calibrated
:class:`~repro.network.allocator.EmulatorRateProvider` — on a clean crossbar
and on an oversubscribed fat tree whose fabric links actually bind, with
warm starts on and off.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import Transfer
from repro.network.sharing import FlowSpec, weighted_max_min_allocation
from repro.network.technologies import get_technology
from repro.network.topology import FatTreeTopology

common_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

capacity_strategy = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
)
flow_strategy = st.tuples(
    st.lists(st.integers(0, 9), min_size=0, max_size=4),  # resource ids (dups ok)
    st.one_of(st.just(float("inf")),
              st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)),  # cap
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),  # weight
)
instance_strategy = st.fixed_dictionaries({
    "capacities": st.lists(capacity_strategy, min_size=0, max_size=10),
    "flows": st.lists(flow_strategy, min_size=1, max_size=24),
})


def build_instance(spec):
    capacities = {f"r{i}": c for i, c in enumerate(spec["capacities"])}
    flows = []
    for index, (resources, cap, weight) in enumerate(spec["flows"]):
        names = tuple(
            f"r{r % len(capacities)}" for r in resources
        ) if capacities else ()
        flows.append(FlowSpec(f"f{index}", names, cap=cap, weight=weight))
    return flows, capacities


class TestWaterFillingBitExact:
    @common_settings
    @given(spec=instance_strategy)
    def test_array_and_scalar_paths_identical(self, spec):
        flows, capacities = build_instance(spec)
        scalar = weighted_max_min_allocation(flows, capacities, vectorized=False)
        array = weighted_max_min_allocation(flows, capacities, vectorized=True)
        assert scalar == array
        assert all(type(r) is float for r in array.values())

    @common_settings
    @given(spec=instance_strategy)
    def test_auto_dispatch_matches_both(self, spec):
        flows, capacities = build_instance(spec)
        auto = weighted_max_min_allocation(flows, capacities)
        assert auto == weighted_max_min_allocation(flows, capacities, vectorized=False)


# --------- emulator level: vectorized allocator over delta sequences -------
step_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 11), st.integers(0, 11)),
    st.tuples(st.just("del"), st.integers(0, 30), st.integers(0, 0)),
)
sequence_strategy = st.lists(step_strategy, min_size=1, max_size=30)


def deltas(steps, max_live=10):
    live = {}
    counter = 0
    out = []
    for kind, x, y in steps:
        if kind == "add" and len(live) < max_live:
            transfer = Transfer(transfer_id=counter, src=x, dst=y, size=1000.0)
            live[counter] = transfer
            counter += 1
            out.append(([transfer], [], dict(live)))
        elif kind == "del" and live:
            tid = list(live)[x % len(live)]
            del live[tid]
            out.append(([], [tid], dict(live)))
    return out


def make_provider(technology, loaded_fabric, warm_start, vectorized):
    topology = None
    if loaded_fabric:
        # 4:1 oversubscription on 12 hosts: the shared uplinks genuinely bind
        topology = FatTreeTopology(
            num_hosts=12, technology=technology,
            hosts_per_edge=4, uplinks_per_edge=1,
        )
    return EmulatorRateProvider(
        technology, topology=topology, num_hosts=12,
        warm_start=warm_start, vectorized=vectorized,
    )


class TestVectorizedEmulatorBitExact:
    @pytest.mark.parametrize("technology", ["ethernet", "myrinet", "infiniband"])
    @pytest.mark.parametrize("loaded_fabric", [False, True],
                             ids=["crossbar", "oversubscribed-fat-tree"])
    @pytest.mark.parametrize("warm_start", [False, True],
                             ids=["cold", "warm-start"])
    @common_settings
    @given(steps=sequence_strategy)
    def test_vectorized_and_scalar_update_streams_identical(
        self, technology, loaded_fabric, warm_start, steps
    ):
        tech = get_technology(technology)
        vec = make_provider(tech, loaded_fabric, warm_start, vectorized=True)
        ref = make_provider(tech, loaded_fabric, warm_start, vectorized=False)
        for added, removed, _live in deltas(steps):
            changed_vec = vec.update(added, removed)
            changed_ref = ref.update(added, removed)
            assert changed_vec == changed_ref
            assert all(type(r) is float for r in changed_vec.values())
