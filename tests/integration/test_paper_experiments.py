"""Integration tests: end-to-end reproduction of the paper's experiments.

These tests run the same pipelines as the benchmark harness, on reduced
problem sizes, and check the *shape* results the paper reports: which model
wins, whether it is optimistic or pessimistic, and the rough magnitude of the
errors.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_reports, compare_times
from repro.benchmark import ExperimentRunner, PenaltyTool
from repro.cluster import custom_cluster
from repro.core import (
    GigabitEthernetModel,
    LinearCostModel,
    MyrinetModel,
    NoContentionModel,
)
from repro.scheme import figure2_schemes, figure4_scheme, mk1_tree, mk2_complete
from repro.simulator import Simulator
from repro.workloads import generate_linpack


class TestFigure2Pipeline:
    """Emulator + models reproduce the Figure 2 ladder ordering."""

    def test_model_predictions_track_the_emulator_on_simple_conflicts(self):
        # 35 % headroom: the Myrinet model predicts no slowdown for the single
        # reverse stream of S4 while the measurement (paper and emulator alike)
        # shows ~1.45 — the known income/outgo weakness discussed in §VI.C.
        runner = ExperimentRunner(networks=("ethernet", "myrinet", "infiniband"),
                                  iterations=1, num_hosts=16)
        for network in ("ethernet", "myrinet", "infiniband"):
            for scheme_id in ("S2", "S3", "S4"):
                result = runner.run_scheme(figure2_schemes()[scheme_id], network)
                for row in result.rows():
                    assert abs(row["relative_error_percent"]) < 35, (network, scheme_id, row)

    def test_network_ranking_matches_the_paper(self):
        """GigE shares best (lowest penalty growth), Myrinet worst (Figure 2 analysis)."""
        tool_e = PenaltyTool("ethernet", iterations=1, num_hosts=8)
        tool_m = PenaltyTool("myrinet", iterations=1, num_hosts=8)
        tool_i = PenaltyTool("infiniband", iterations=1, num_hosts=8)
        graph = figure2_schemes()["S3"]
        pe = tool_e.measure(graph).mean_penalty
        pm = tool_m.measure(graph).mean_penalty
        pi = tool_i.measure(graph).mean_penalty
        assert pe < pi < pm

    def test_infiniband_remains_fastest_in_absolute_time(self):
        """'Infiniband will probably stay the faster interconnect whatever the scheme.'"""
        graph = figure2_schemes()["S5"]
        times_e = PenaltyTool("ethernet", iterations=1, num_hosts=8).measure(graph).times
        times_i = PenaltyTool("infiniband", iterations=1, num_hosts=8).measure(graph).times
        assert max(times_i.values()) < min(times_e.values())


class TestFigure4Pipeline:
    def test_prediction_ordering_matches_the_paper(self):
        """d is the fastest, a=b, e=f, c among the slowest (Figure 4 table)."""
        model = GigabitEthernetModel()
        cost = LinearCostModel(latency=45e-6, bandwidth=93.75e6)
        times = model.predict_times(figure4_scheme(), cost)
        assert times["d"] == min(times.values())
        assert times["a"] == pytest.approx(times["b"])
        assert times["e"] == pytest.approx(times["f"])
        assert times["c"] == max(times.values())

    def test_model_vs_emulator_errors_are_moderate(self):
        tool = PenaltyTool("ethernet", iterations=1, num_hosts=8)
        graph = figure4_scheme()
        measured = tool.measure(graph).times
        cost = LinearCostModel(
            latency=tool.technology.latency,
            bandwidth=tool.technology.single_stream_bandwidth,
            envelope=tool.technology.mpi_envelope,
        )
        predicted = GigabitEthernetModel().predict_times(graph, cost)
        report = compare_times(measured, predicted, graph_name="fig4")
        assert report.absolute < 25.0


class TestFigure7Pipeline:
    @pytest.mark.parametrize("graph_builder,max_eabs", [(mk1_tree, 30.0), (mk2_complete, 45.0)])
    def test_myrinet_model_accuracy_on_synthetic_graphs(self, graph_builder, max_eabs):
        graph = graph_builder()
        tool = PenaltyTool("myrinet", iterations=1, num_hosts=16)
        measured = tool.measure(graph).times
        cost = LinearCostModel(
            latency=tool.technology.latency,
            bandwidth=tool.technology.single_stream_bandwidth,
            envelope=tool.technology.mpi_envelope,
        )
        predicted = MyrinetModel().predict_times(graph, cost)
        report = compare_times(measured, predicted, graph_name=graph.name)
        assert report.absolute < max_eabs

    def test_tree_is_predicted_better_than_complete_graph(self):
        """Paper: E_abs(MK1)=2.6 % < E_abs(MK2)=9.5 % — trees are easier."""
        tool = PenaltyTool("myrinet", iterations=1, num_hosts=16)
        cost = LinearCostModel(
            latency=tool.technology.latency,
            bandwidth=tool.technology.single_stream_bandwidth,
            envelope=tool.technology.mpi_envelope,
        )
        reports = {}
        for graph in (mk1_tree(), mk2_complete()):
            measured = tool.measure(graph).times
            predicted = MyrinetModel().predict_times(graph, cost)
            reports[graph.name] = compare_times(measured, predicted, graph.name).absolute
        assert reports["mk1-tree"] <= reports["mk2-complete"]

    def test_contention_models_beat_the_linear_baseline(self):
        """The whole point of the paper: LogGP-style no-contention models are far off."""
        graph = mk2_complete()
        tool = PenaltyTool("myrinet", iterations=1, num_hosts=16)
        cost = LinearCostModel(
            latency=tool.technology.latency,
            bandwidth=tool.technology.single_stream_bandwidth,
            envelope=tool.technology.mpi_envelope,
        )
        measured = tool.measure(graph).times
        myrinet_eabs = compare_times(measured, MyrinetModel().predict_times(graph, cost)).absolute
        baseline_eabs = compare_times(measured, NoContentionModel().predict_times(graph, cost)).absolute
        assert myrinet_eabs < baseline_eabs


class TestLinpackPipeline:
    @pytest.fixture(scope="class")
    def hpl_setup(self):
        cluster = custom_cluster(num_nodes=4, cores_per_node=2, technology="myrinet")
        app = generate_linpack(problem_size=3000, block_size=250, num_tasks=8)
        return cluster, app

    def test_predicted_vs_emulated_per_task_error(self, hpl_setup):
        cluster, app = hpl_setup
        measured = Simulator.emulated(cluster).run(app, placement="RRN")
        predicted = Simulator.predictive(cluster, model=MyrinetModel()).run(app, placement="RRN")
        report = compare_reports(measured, predicted)
        assert report.mean_error < 20.0

    def test_every_task_communicates(self, hpl_setup):
        cluster, app = hpl_setup
        report = Simulator.emulated(cluster).run(app, placement="RRN")
        assert all(report.communication_time(r) > 0 for r in range(app.num_tasks))

    def test_placement_changes_the_total_time(self, hpl_setup):
        cluster, app = hpl_setup
        sim = Simulator.emulated(cluster)
        rrn = sim.run(app, placement="RRN").total_time
        rrp = sim.run(app, placement="RRP").total_time
        # RRP keeps ring neighbours on the same node (memory path), so it is
        # at least as fast as RRN for the ring broadcast
        assert rrp <= rrn * 1.001

    def test_prediction_is_deterministic(self, hpl_setup):
        cluster, app = hpl_setup
        sim = Simulator.predictive(cluster, model=MyrinetModel())
        a = sim.run(app, placement="RRN").communication_times()
        b = sim.run(app, placement="RRN").communication_times()
        assert a == b
