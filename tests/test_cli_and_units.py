"""Tests for the command line interface and the unit helpers."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.units import (
    GBIT,
    MB,
    format_rate,
    format_size,
    format_time,
    parse_size,
)


class TestUnits:
    @pytest.mark.parametrize("text,expected", [
        ("20M", 20 * MB),
        ("4MB", 4 * MB),
        ("512k", 512_000),
        ("1GiB", 1 << 30),
        (1024, 1024),
        ("0", 0),
    ])
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["-5", "12parsecs", "MB", ""])
    def test_parse_size_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_format_size(self):
        assert format_size(20 * MB) == "20 MB"
        assert format_size(512) == "512 B"

    def test_format_time(self):
        assert format_time(1.5).endswith("s")
        assert "ms" in format_time(0.002)
        assert "us" in format_time(2e-6)

    def test_format_rate(self):
        assert "MB/s" in format_rate(93.75e6)
        assert "GB/s" in format_rate(2e9)

    def test_gbit_constant(self):
        assert GBIT == pytest.approx(125_000_000)


class TestCli:
    def test_predict_inline_scheme(self, capsys):
        code = main(["predict", "--network", "ethernet", "--scheme", "0->1 0->2 0->3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2.25" in out
        assert "gigabit-ethernet" in out

    def test_predict_explicit_model(self, capsys):
        code = main(["predict", "--network", "myrinet", "--model", "myrinet",
                     "--scheme", "0->1 0->2", "--size", "4M"])
        assert code == 0
        assert "2.0" in capsys.readouterr().out

    def test_measure_scheme_file(self, tmp_path, capsys):
        scheme = tmp_path / "scheme.scm"
        scheme.write_text("scheme demo\nsize 20M\n0 -> 1 : a\n0 -> 2 : b\n")
        code = main(["measure", "--network", "myrinet", "--scheme-file", str(scheme),
                     "--iterations", "1", "--hosts", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "penalty" in out and "demo" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--network", "ethernet", "--iterations", "1",
                     "--hosts", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "beta" in out
        beta_line = next(line for line in out.splitlines() if line.startswith("beta"))
        assert float(beta_line.split(":")[1]) == pytest.approx(0.75, abs=0.01)

    def test_missing_scheme_reports_error(self, capsys):
        code = main(["predict", "--network", "ethernet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
