"""Tests for the command line interface and the unit helpers."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.units import (
    GBIT,
    MB,
    format_rate,
    format_size,
    format_time,
    parse_size,
)


class TestUnits:
    @pytest.mark.parametrize("text,expected", [
        ("20M", 20 * MB),
        ("4MB", 4 * MB),
        ("512k", 512_000),
        ("1GiB", 1 << 30),
        (1024, 1024),
        ("0", 0),
    ])
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["-5", "12parsecs", "MB", ""])
    def test_parse_size_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_format_size(self):
        assert format_size(20 * MB) == "20 MB"
        assert format_size(512) == "512 B"

    def test_format_time(self):
        assert format_time(1.5).endswith("s")
        assert "ms" in format_time(0.002)
        assert "us" in format_time(2e-6)

    def test_format_rate(self):
        assert "MB/s" in format_rate(93.75e6)
        assert "GB/s" in format_rate(2e9)

    def test_gbit_constant(self):
        assert GBIT == pytest.approx(125_000_000)


class TestCli:
    def test_predict_inline_scheme(self, capsys):
        code = main(["predict", "--network", "ethernet", "--scheme", "0->1 0->2 0->3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2.25" in out
        assert "gigabit-ethernet" in out

    def test_predict_explicit_model(self, capsys):
        code = main(["predict", "--network", "myrinet", "--model", "myrinet",
                     "--scheme", "0->1 0->2", "--size", "4M"])
        assert code == 0
        assert "2.0" in capsys.readouterr().out

    def test_measure_scheme_file(self, tmp_path, capsys):
        scheme = tmp_path / "scheme.scm"
        scheme.write_text("scheme demo\nsize 20M\n0 -> 1 : a\n0 -> 2 : b\n")
        code = main(["measure", "--network", "myrinet", "--scheme-file", str(scheme),
                     "--iterations", "1", "--hosts", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "penalty" in out and "demo" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--network", "ethernet", "--iterations", "1",
                     "--hosts", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "beta" in out
        beta_line = next(line for line in out.splitlines() if line.startswith("beta"))
        assert float(beta_line.split(":")[1]) == pytest.approx(0.75, abs=0.01)

    def test_missing_scheme_reports_error(self, capsys):
        code = main(["predict", "--network", "ethernet"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTraceCli:
    def test_simulate_writes_a_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "sim.jsonl"
        code = main(["simulate", "--workload", "broadcast", "--hosts", "4",
                     "--bg-rate", "150", "--bg-max-flows", "3",
                     "--trace", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out and str(trace_path) in out
        from repro.trace import read_trace_log

        log = read_trace_log(trace_path)
        assert log.meta()["workload"] == "broadcast"
        assert log.kinds()["task.event"] > 0

    def test_trace_record_summarize_replay_round_trip(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(["trace", "record", "--workload", "ring-allgather",
                     "--hosts", "4", "--bg-rate", "120", "--bg-size", "1M",
                     "--bg-max-flows", "6", "--out", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace recorded" in out
        assert trace_path.exists()

        code = main(["trace", "summarize", str(trace_path), "--bins", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace timeline" in out
        assert "records:" in out

        code = main(["trace", "replay", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replay reproduces the recorded run: yes" in out

    def test_trace_replay_with_overrides_is_informational(self, tmp_path, capsys):
        """Cross-scenario replay (override flags) must not claim or fail
        the bit-exactness check."""
        trace_path = tmp_path / "run.jsonl"
        assert main(["trace", "record", "--workload", "broadcast",
                     "--hosts", "4", "--bg-rate", "100", "--bg-max-flows", "3",
                     "--out", str(trace_path)]) == 0
        capsys.readouterr()
        code = main(["trace", "replay", str(trace_path),
                     "--hosts", "6", "--tasks", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "not comparable" in out
        assert "reproduces" not in out

    def test_campaign_trace_is_replayable(self, tmp_path, capsys):
        """Campaign-written traces carry run.meta and feed `trace replay`."""
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "replayable",
            "workloads": [{"kind": "collective", "name": "broadcast",
                           "params": {"size": "1M"}}],
            "host_counts": [4],
            "interference": [
                {"name": "bg",
                 "background": {"rate": 150, "size": "2M", "max_flows": 3}},
            ],
        }))
        trace_dir = tmp_path / "traces"
        assert main(["campaign", "--spec", str(spec_path),
                     "--trace-dir", str(trace_dir)]) == 0
        capsys.readouterr()
        trace_file = next(iter(trace_dir.glob("*.jsonl")))
        code = main(["trace", "replay", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replay reproduces the recorded run: yes" in out

    def test_trace_replay_rejects_a_metaless_trace(self, tmp_path, capsys):
        from repro.trace import JsonlTraceSink

        path = tmp_path / "no-meta.jsonl"
        JsonlTraceSink(path).close()
        code = main(["trace", "replay", str(path)])
        assert code == 2
        assert "run.meta" in capsys.readouterr().err

    def test_campaign_trace_dir_prints_the_summary_table(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-trace",
            "workloads": [{"kind": "collective", "name": "broadcast",
                           "params": {"size": "1M"}}],
            "host_counts": [4],
            "interference": [
                "none",
                {"name": "bg",
                 "background": {"rate": 150, "size": "2M", "max_flows": 4}},
            ],
        }))
        trace_dir = tmp_path / "traces"
        code = main(["campaign", "--spec", str(spec_path),
                     "--trace-dir", str(trace_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary: 2 scenario traces" in out
        assert "placement robustness" in out
        assert len(list(trace_dir.glob("*.jsonl"))) == 2


class TestObservabilityCli:
    def record_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        assert main(["trace", "record", "--workload", "broadcast",
                     "--hosts", "4", "--bg-rate", "120", "--bg-max-flows", "3",
                     "--out", str(trace_path)]) == 0
        capsys.readouterr()
        return trace_path

    def test_summarize_json_matches_the_text_view(self, tmp_path, capsys):
        import json

        trace_path = self.record_trace(tmp_path, capsys)
        assert main(["trace", "summarize", str(trace_path), "--json",
                     "--bins", "5"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert set(record) == {"summary", "bins"}
        assert len(record["bins"]) == 5
        assert main(["trace", "summarize", str(trace_path), "--bins", "5"]) == 0
        text = capsys.readouterr().out
        # both views are rendered from the same in-memory record
        assert f"records: {record['summary']['records']}" in text
        assert "trace timeline" in text

    def test_tail_once_reports_and_summarizes(self, tmp_path, capsys):
        trace_path = self.record_trace(tmp_path, capsys)
        code = main(["trace", "tail", str(trace_path), "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tail: +" in out
        assert "trace tail:" in out  # the final timeline table

    def test_diff_identical_traces_exits_zero(self, tmp_path, capsys):
        trace_path = self.record_trace(tmp_path, capsys)
        code = main(["trace", "diff", str(trace_path), str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "traces identical" in out

    def test_diff_localizes_a_perturbed_record(self, tmp_path, capsys):
        import json

        trace_path = self.record_trace(tmp_path, capsys)
        lines = trace_path.read_text().splitlines()
        record = json.loads(lines[6])  # record 5 (line 7: header + 5 before)
        record["t"] = record.get("t", 0.0) + 123.0
        lines[6] = json.dumps(record)
        perturbed = tmp_path / "perturbed.jsonl"
        perturbed.write_text("\n".join(lines) + "\n")
        code = main(["trace", "diff", str(trace_path), str(perturbed)])
        out = capsys.readouterr().out
        assert code == 1
        assert "first divergence at record 5 (line 7)" in out
        assert "differing fields: t" in out

    def campaign_spec(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-progress",
            "workloads": [{"kind": "collective", "name": "broadcast",
                           "params": {"size": "1M"}}],
            "host_counts": [4],
            "interference": ["none"],
        }))
        return spec_path

    def test_campaign_progress_prints_progress_lines(self, tmp_path, capsys):
        code = main(["campaign", "--spec", str(self.campaign_spec(tmp_path)),
                     "--trace-dir", str(tmp_path / "traces"),
                     "--progress", "--progress-interval", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "progress:" in out
        assert "1/1 scenarios complete" in out

    def test_campaign_metrics_every_samples_into_the_trace(self, tmp_path, capsys):
        from repro.trace import read_trace_log

        trace_dir = tmp_path / "traces"
        code = main(["campaign", "--spec", str(self.campaign_spec(tmp_path)),
                     "--trace-dir", str(trace_dir), "--metrics-every", "1"])
        assert code == 0
        capsys.readouterr()
        trace_file = next(iter(trace_dir.glob("*.jsonl")))
        kinds = read_trace_log(trace_file).kinds()
        assert kinds["metrics.sample"] > 0
