"""Unit tests for the vectorized calendar bookkeeping (PR 8 satellites).

Regression coverage for compaction on cancel-heavy workloads (which create
stale heap entries without ever re-timing), the degenerate batch shapes of
the structure-of-arrays rate application — zero-rate→nonzero transitions,
infinite rates, single-flight batches below the heapify threshold,
cancel-then-reprice, and transfer-id reuse (slot/epoch recycling) — plus
the 1-in-N sampled flush phase timer.

The application-level bit-exactness sweep (random MPI workloads, both
provider families, traced and untraced) lives in
``tests/property/test_vectorized_calendar.py``; these tests pin the narrow
corners a random workload rarely hits.
"""

from __future__ import annotations

import math

import pytest

from repro._numpy import np
from repro.exceptions import ReproError
from repro.network.fluid import SlotMap, Transfer, TransferCalendar
from repro.obs import MetricsRegistry
from repro.obs.registry import PhaseTimer

BOTH_PATHS = pytest.mark.parametrize("vectorized", [True, False],
                                     ids=["array", "scalar"])

#: heap-strategy counters that legitimately differ scalar-vs-array
STRATEGY_COUNTERS = ("bulk_merges", "bulk_entries", "handoff_tier_slots",
                     "handoff_tier_arrays", "handoff_tier_dict")


class ScriptedDelta:
    """Delta provider returning scripted rates; constant once exhausted.

    ``script`` maps update-call number (1-based) to the rate every touched
    transfer gets on that call; later calls fall back to ``default``.
    """

    def __init__(self, script=None, default=100.0):
        self.script = dict(script or {})
        self.default = default
        self.calls = 0
        self.tracked = set()

    def _rate(self):
        return self.script.get(self.calls, self.default)

    def update(self, added, removed):
        self.calls += 1
        for tid in removed:
            self.tracked.discard(tid)
        rate = self._rate()
        changed = {}
        for transfer in added:
            self.tracked.add(transfer.transfer_id)
            changed[transfer.transfer_id] = rate
        return changed

    # scripted test double: both entry points price from the same _rate()
    # script, and the tests count calls to each path separately
    # repro-check: ignore[RC04] — deliberate independent rates() in a test double
    def rates(self, active):
        self.calls += 1
        rate = self._rate()
        return {t.transfer_id: rate for t in active}

    def reset(self):
        self.tracked = set()


def comparable_stats(calendar):
    flat = calendar.stats.snapshot()
    for key in STRATEGY_COUNTERS:
        flat.pop(key, None)
    return flat


class TestCancelCompaction:
    """Satellite (a): ``cancel()`` must also check heap compaction."""

    @BOTH_PATHS
    def test_cancel_heavy_workload_bounds_the_heap(self, vectorized):
        """Mass cancellation compacts the heap even though nothing re-times.

        Before the fix, compaction was only reachable through ``_retime``;
        a cancel-heavy workload (interference injectors tearing down
        background flows) creates stale entries without a single re-timing,
        so the heap grew unboundedly stale.
        """
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True,
                                    vectorized=vectorized)
        num_flights = 200
        for i in range(num_flights):
            calendar.activate(Transfer(i, 0, 1, 1e9), now=0.0)
        calendar.flush(0.0)
        assert len(calendar._heap) == num_flights
        # constant rates: the only heap churn from here on is cancellation
        retimed_before = calendar.stats.retimed
        for i in range(150):
            calendar.cancel(i, 1.0)
        assert calendar.stats.retimed == retimed_before
        bound = max(TransferCalendar.COMPACT_MIN_HEAP,
                    2 * calendar.active_count + 1)
        assert len(calendar._heap) <= bound
        assert calendar.stats.compactions > 0
        # the survivors still complete, in activation order (equal rates)
        done = calendar.pop_due(1e9)
        assert [t.transfer_id for t in done] == list(range(150, num_flights))

    @BOTH_PATHS
    def test_small_cancel_runs_never_compact(self, vectorized):
        calendar = TransferCalendar(ScriptedDelta(), delta=True,
                                    vectorized=vectorized)
        for i in range(8):
            calendar.activate(Transfer(i, 0, 1, 1e9), now=0.0)
        calendar.flush(0.0)
        for i in range(6):
            calendar.cancel(i, 1.0)
        assert calendar.stats.compactions == 0


class TestDegenerateBatches:
    """Satellite (d): batch shapes the random property sweep rarely hits."""

    def test_zero_rate_batch_then_nonzero(self):
        """A whole batch stalling at rate zero recovers on the next flush.

        Exercises the batch path's nonpos bookkeeping (every flight newly
        stalled) and the stall-retry cycle re-rating the same batch.
        """
        outcomes = []
        for vectorized in (True, False):
            # call 1 (the flush) zero-rates everything; call 2 (the
            # stall retry inside the same flush) still refuses; call 3
            # (next flush's retry) re-rates at the default
            provider = ScriptedDelta(script={1: 0.0, 2: 0.0})
            calendar = TransferCalendar(provider, delta=True,
                                        vectorized=vectorized)
            for i in range(6):
                calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
            calendar.flush(0.0)
            assert calendar.stalled_ids() == tuple(range(6))
            assert calendar.next_time() is None
            calendar.flush(1.0)
            assert calendar.stalled_ids() == ()
            assert calendar.next_time() == pytest.approx(11.0)
            done = calendar.pop_due(11.0)
            outcomes.append(([t.transfer_id for t in done],
                             comparable_stats(calendar)))
        assert outcomes[0] == outcomes[1]

    def test_infinite_rate_batch_completes_immediately(self):
        """rate=inf predicts completion *now* without fp warnings."""
        with np.errstate(invalid="raise", over="raise"):
            outcomes = []
            for vectorized in (True, False):
                provider = ScriptedDelta(default=math.inf)
                calendar = TransferCalendar(provider, delta=True,
                                            vectorized=vectorized)
                for i in range(8):
                    calendar.activate(Transfer(i, 0, 1, 1e12), now=0.0)
                calendar.flush(0.0)
                assert calendar.next_time() == pytest.approx(0.0)
                done = calendar.pop_due(0.0)
                outcomes.append(([t.transfer_id for t in done],
                                 comparable_stats(calendar)))
            assert outcomes[0][0] == list(range(8))
            assert outcomes[0] == outcomes[1]

    def test_mixed_zero_and_infinite_rates(self):
        """One batch mixing stalls, instant finishers and finite rates."""
        rates = {0: 0.0, 1: math.inf, 2: 100.0, 3: math.inf, 4: 0.0,
                 5: 200.0}

        class MixedDelta:
            def update(self, added, removed):
                return {t.transfer_id: rates[t.transfer_id] for t in added}

            def reset(self):
                pass

        outcomes = []
        for vectorized in (True, False):
            calendar = TransferCalendar(MixedDelta(), delta=True,
                                        vectorized=vectorized)
            for i in rates:
                calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
            calendar.flush(0.0)
            assert calendar.stalled_ids() == (0, 4)
            done = calendar.pop_due(0.0)
            assert [t.transfer_id for t in done] == [1, 3]
            later = calendar.pop_due(10.0)
            outcomes.append(([t.transfer_id for t in later],
                             comparable_stats(calendar)))
        # flight 5 (1000/200 = 5s) surfaces before flight 2 (1000/100 = 10s)
        assert outcomes[0][0] == [5, 2]
        assert outcomes[0] == outcomes[1]

    def test_single_flight_below_batch_threshold(self):
        """A one-flight changed set takes the loop path — no bulk merges."""
        assert 1 < TransferCalendar.BATCH_MIN
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        calendar.activate(Transfer("solo", 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.bulk_merges == 0
        assert calendar.stats.bulk_entries == 0
        assert calendar.stats.retimed == 1
        assert calendar.next_time() == pytest.approx(10.0)
        assert [t.transfer_id for t in calendar.pop_due(10.0)] == ["solo"]

    def test_large_batch_bulk_merges(self):
        """A big changed set into a small heap takes the heapify merge."""
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        n = max(TransferCalendar.BULK_HEAPIFY_MIN,
                TransferCalendar.BATCH_MIN) + 4
        for i in range(n):
            calendar.activate(Transfer(i, 0, 1, 1000.0 * (i + 1)), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.bulk_merges == 1
        assert calendar.stats.bulk_entries == n
        done = calendar.pop_due(1e9)
        assert [t.transfer_id for t in done] == list(range(n))

    @BOTH_PATHS
    def test_cancel_then_reprice(self, vectorized):
        """Repricing after a cancel re-times exactly the survivors."""
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True,
                                    vectorized=vectorized)
        for i in range(6):
            calendar.activate(Transfer(i, 0, 1, 6000.0), now=0.0)
        calendar.flush(0.0)
        calendar.cancel(2, 10.0)
        calendar.cancel(4, 10.0)
        # the next provider answer halves the rate: every survivor re-times
        provider.default = 50.0
        calendar.reprice(10.0)
        # 6000 bytes, 1000 done by t=10 at rate 100, 5000 left at rate 50
        expected = 10.0 + 5000.0 / 50.0
        assert calendar.next_time() == pytest.approx(expected)
        done = calendar.pop_due(expected + 1.0)
        assert [t.transfer_id for t in done] == [0, 1, 3, 5]
        assert calendar.active_count == 0

    def test_tid_reuse_recycles_the_slot(self):
        """Cancel + re-activate of the same id reuses the freed slot and
        resets its epoch; the old tenant's heap entries die as stale."""
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        for i in range(5):
            calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        capacity = calendar._arr.slots.capacity
        old_slot = calendar._arr.slots.slot_of[3]
        calendar.cancel(3, 1.0)
        calendar.activate(Transfer(3, 2, 3, 9000.0), now=1.0)
        assert calendar._arr.slots.slot_of[3] == old_slot
        assert calendar._arr.slots.capacity == capacity
        assert int(calendar._arr.epoch[old_slot]) == 0
        calendar.flush(1.0)
        # the replacement completes on its own schedule; the stale entry of
        # the first tenant (epoch 1 at t=10) never surfaces as a completion
        assert [t.transfer_id for t in calendar.pop_due(10.0)] == [0, 1, 2, 4]
        done = calendar.pop_due(1e9)
        assert [t.transfer_id for t in done] == [3]
        assert done[0].size == 9000.0
        assert calendar.stats.completions == 5

    @BOTH_PATHS
    def test_tid_reuse_agrees_across_paths(self, vectorized):
        provider = ScriptedDelta()
        calendar = TransferCalendar(provider, delta=True,
                                    vectorized=vectorized)
        for i in range(5):
            calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        calendar.cancel(3, 1.0)
        calendar.activate(Transfer(3, 2, 3, 9000.0), now=1.0)
        calendar.flush(1.0)
        first = calendar.pop_due(10.0)
        second = calendar.pop_due(1e9)
        assert [t.transfer_id for t in first] == [0, 1, 2, 4]
        assert [t.transfer_id for t in second] == [3]


class TestSlotMap:
    def test_lifo_reuse_and_capacity(self):
        slots = SlotMap()
        assert [slots.acquire(k) for k in "abc"] == [0, 1, 2]
        assert slots.capacity == 3
        slots.release("b")
        slots.release("a")
        # LIFO: the most recently freed slot is handed out first
        assert slots.acquire("d") == 0
        assert slots.acquire("e") == 1
        assert slots.capacity == 3
        assert list(slots.slot_of) == ["c", "d", "e"]  # acquisition order
        assert len(slots) == 3 and "c" in slots and "a" not in slots

    def test_release_of_an_unheld_key_raises(self):
        slots = SlotMap()
        slots.acquire("a")
        with pytest.raises(KeyError):
            slots.release("ghost")


class TestFlushTimerSampling:
    """Satellite (b): the flush phase timer can be 1-in-N sampled."""

    def test_due_pattern(self):
        timer = PhaseTimer("t", sample_every=3)
        assert [timer.due() for _ in range(7)] == [
            False, False, True, False, False, True, False]
        always = PhaseTimer("u")
        assert [always.due() for _ in range(3)] == [True, True, True]

    def test_invalid_factor_rejected(self):
        with pytest.raises(ReproError):
            PhaseTimer("t", sample_every=0)
        with pytest.raises(ReproError):
            MetricsRegistry(timer_sample_every=0)

    def test_snapshot_exposes_the_factor(self):
        timer = PhaseTimer("flush_s", sample_every=4)
        timer.observe(0.5)
        snap = timer.snapshot()
        assert snap["flush_s.sample_every"] == 4
        assert snap["flush_s.count"] == 1
        # factor 1 keeps the historical snapshot shape
        assert "t.sample_every" not in PhaseTimer("t").snapshot()

    @BOTH_PATHS
    def test_sampled_calendar_flush_timer(self, vectorized):
        registry = MetricsRegistry(timer_sample_every=4)
        calendar = TransferCalendar(ScriptedDelta(), delta=True,
                                    metrics=registry, vectorized=vectorized)
        calendar.activate(Transfer("a", 0, 1, 1e9), now=0.0)
        for step in range(12):
            calendar.flush(float(step))
        timer = registry.timer("calendar.flush_s")
        assert timer.count == 3  # 12 flush calls, every 4th observed
        snap = registry.snapshot()
        assert snap["calendar.flush_s.sample_every"] == 4

    def test_unsampled_timer_observes_every_flush(self):
        registry = MetricsRegistry()
        calendar = TransferCalendar(ScriptedDelta(), delta=True,
                                    metrics=registry)
        calendar.activate(Transfer("a", 0, 1, 1e9), now=0.0)
        for step in range(5):
            calendar.flush(float(step))
        assert registry.timer("calendar.flush_s").count == 5


class TieredDelta:
    """One deterministic rate machine behind all three delta handoff tiers.

    Dense contract: every call returns a rate for the whole tracked set, of
    which one hash group (``tid % GROUPS``) is re-priced per call.  The
    three subclasses expose exactly one array entry point each, so a
    calendar built on them exercises exactly that handoff — with identical
    float64 values in identical (tracked) order.
    """

    GROUPS = 4

    def __init__(self):
        self.calls = 0
        self.tracked = []
        self.pos = {}
        self.slot_handles = {}
        self.version = [0] * self.GROUPS

    def _rate(self, tid):
        return 100.0 * (1 + tid % 3) + 10.0 * (self.version[tid % self.GROUPS] % 5)

    def _apply(self, added, removed, added_slots=None):
        self.calls += 1
        for tid in removed:
            i = self.pos.pop(tid)
            last = len(self.tracked) - 1
            if i != last:
                self.tracked[i] = self.tracked[last]
                self.pos[self.tracked[i]] = i
            self.tracked.pop()
            self.slot_handles.pop(tid, None)
        for j, transfer in enumerate(added):
            tid = transfer.transfer_id
            self.pos[tid] = len(self.tracked)
            self.tracked.append(tid)
            if added_slots is not None:
                self.slot_handles[tid] = added_slots[j]
        self.version[self.calls % self.GROUPS] += 1
        return [self._rate(tid) for tid in self.tracked]

    def update(self, added, removed):
        rates = self._apply(added, removed)
        return dict(zip(self.tracked, rates))

    def reset(self):
        self.tracked = []
        self.pos = {}
        self.slot_handles = {}


class ArraysTierDelta(TieredDelta):
    def update_arrays(self, added, removed):
        rates = self._apply(added, removed)
        return list(self.tracked), np.asarray(rates, dtype=np.float64)


class SlotTierDelta(TieredDelta):
    # single-tier on purpose: this double isolates the slot-handle tier, so
    # the rate-scale fallback test below must land on the dict path
    # repro-check: ignore[RC04] — deliberate slots-without-arrays test double
    def update_slots(self, added, added_slots, removed):
        rates = self._apply(added, removed, added_slots)
        slots = np.fromiter((self.slot_handles[t] for t in self.tracked),
                            dtype=np.intp, count=len(self.tracked))
        return list(self.tracked), slots, np.asarray(rates, dtype=np.float64)


def run_churn(provider, vectorized, num_flights=24, rounds=12):
    """Churn loop with mid-run completions, cancels and slot reuse.

    Even-id originals are huge (they outlive every round and serve as the
    deterministic cancel targets); odd-id originals and the per-round
    arrivals are small, so they complete mid-run — freeing slots that
    later arrivals reuse while the provider's mirror table keeps up.
    """
    calendar = TransferCalendar(provider, delta=True, vectorized=vectorized)
    for i in range(num_flights):
        size = 1e7 if i % 2 == 0 else 3000.0 * (1 + i % 5)
        calendar.activate(Transfer(i, 0, 1, size), now=0.0)
    calendar.flush(0.0)
    done = []
    for r in range(rounds):
        now = 10.0 * (r + 1)
        calendar.cancel(2 * r, now)  # even ids never complete mid-run
        calendar.activate(Transfer(num_flights + r, 0, 1,
                                   2500.0 * (1 + r % 3)), now=now)
        calendar.flush(now)
        done.extend(t.transfer_id for t in calendar.pop_due(now))
    done.extend(t.transfer_id for t in calendar.pop_due(1e9))
    return done, comparable_stats(calendar)


class TestSlotHandleHandoff:
    """The slot-handle handoff tier agrees bit-for-bit with the dict tier."""

    def test_all_three_tiers_agree_under_churn(self):
        """Same churn workload, three handoffs: identical completions/stats.

        The loop completes flights mid-run (freeing slots that later
        arrivals reuse), cancels others and re-prices a rotating group —
        the slot table the provider mirrors must track all of it.
        """
        scalar = run_churn(TieredDelta(), vectorized=False)
        dict_array = run_churn(TieredDelta(), vectorized=True)
        arrays = run_churn(ArraysTierDelta(), vectorized=True)
        slots = run_churn(SlotTierDelta(), vectorized=True)
        assert slots == scalar
        assert arrays == scalar
        assert dict_array == scalar

    def test_small_batches_take_the_slot_loop(self):
        """Below ``BATCH_MIN`` the slot handoff runs the per-flight loop."""
        provider = SlotTierDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        calendar.activate(Transfer(0, 0, 1, 1000.0), now=0.0)
        calendar.activate(Transfer(1, 0, 1, 2000.0), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.retimed == 2
        done = calendar.pop_due(1e9)
        # flight 1 prices at 210 B/s (2000 B -> 9.52 s), flight 0 at
        # 100 B/s (1000 B -> 10 s): 1 completes first
        assert [t.transfer_id for t in done] == [1, 0]

    def test_negative_rate_raises_before_any_application(self):
        provider = SlotTierDelta()
        provider._rate = lambda tid: -1.0
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        for i in range(6):
            calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
        with pytest.raises(ReproError, match="negative rate"):
            calendar.flush(0.0)

    def test_rate_scale_falls_back_past_the_slot_tier(self):
        """An installed rate scale bypasses update_slots (scaled rates need
        per-transfer python hooks); a slots-only provider falls back to the
        dict contract rather than crashing on the missing array tier."""
        provider = SlotTierDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        calendar.set_rate_scale(lambda transfer: 0.5)
        for i in range(6):
            calendar.activate(Transfer(i, 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.retimed == 6
        # scaled completion: rate 100*(1+tid%3)+10*v halved
        assert calendar.next_time() is not None

    def test_rate_scale_window_reenters_the_slot_tier(self):
        """The reprice that ends a rate-scale window re-seeds every slot
        handle, so the slot tier resumes for the rest of the run.

        Regression: clearing the scale used to leave the calendar on the
        fallback tier forever — flights re-added through the dict contract
        during the window had no handles, so the provider's slot mirror
        would KeyError on the next slot flush.
        """
        provider = SlotTierDelta()
        calendar = TransferCalendar(provider, delta=True, vectorized=True)
        for i in range(6):
            calendar.activate(Transfer(i, 0, 1, 1e7), now=0.0)
        calendar.flush(0.0)
        assert calendar.stats.handoff_tier_slots == 1
        # scale window: flushes downgrade past the slot tier (here all the
        # way to the dict contract — SlotTierDelta has no array tier)
        calendar.set_rate_scale(lambda transfer: 0.5)
        calendar.reprice(1.0)
        calendar.activate(Transfer(6, 0, 1, 1e7), now=1.0)
        calendar.flush(1.0)
        assert calendar.stats.handoff_tier_slots == 1
        assert calendar.stats.handoff_tier_dict == 2
        # window over: the clearing reprice re-adds the whole active set
        # through update_slots, re-seeding every handle
        calendar.set_rate_scale(None)
        calendar.reprice(2.0)
        assert calendar.stats.handoff_tier_slots == 2
        # ...so later slot flushes find the full mirror intact
        calendar.activate(Transfer(7, 0, 1, 1e7), now=2.0)
        calendar.flush(2.0)
        assert calendar.stats.handoff_tier_slots == 3
        done = calendar.pop_due(1e9)
        assert sorted(t.transfer_id for t in done) == list(range(8))
