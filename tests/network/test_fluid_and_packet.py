"""Tests of the fluid transfer simulator and the packet-level flow-control models."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network import (
    CreditBasedNetwork,
    FluidTransferSimulator,
    INFINIBAND_INFINIHOST3,
    MYRINET_2000,
    StopAndGoNetwork,
    Transfer,
)
from repro.units import MB


class ConstantRateProvider:
    """Every active transfer progresses at the same fixed rate."""

    def __init__(self, rate: float):
        self.rate = rate

    def rates(self, active):
        return {t.transfer_id: self.rate for t in active}


class SharedResourceProvider:
    """All transfers share a single resource of fixed capacity equally."""

    def __init__(self, capacity: float):
        self.capacity = capacity

    def rates(self, active):
        share = self.capacity / len(active)
        return {t.transfer_id: share for t in active}


class TestFluidSimulator:
    def test_single_transfer_duration(self):
        sim = FluidTransferSimulator(ConstantRateProvider(100.0))
        results = sim.run([Transfer("a", 0, 1, 1000.0)])
        assert results["a"].duration == pytest.approx(10.0)

    def test_latency_added_once(self):
        sim = FluidTransferSimulator(ConstantRateProvider(100.0), latency=1.0)
        results = sim.run([Transfer("a", 0, 1, 1000.0)])
        assert results["a"].duration == pytest.approx(11.0)

    def test_equal_sharing_doubles_duration(self):
        sim = FluidTransferSimulator(SharedResourceProvider(100.0))
        transfers = [Transfer("a", 0, 1, 1000.0), Transfer("b", 0, 2, 1000.0)]
        results = sim.run(transfers)
        assert results["a"].duration == pytest.approx(20.0)
        assert results["b"].duration == pytest.approx(20.0)

    def test_short_transfer_finishes_then_long_one_speeds_up(self):
        """Progressive filling: when the short flow ends, the long one gets the full rate."""
        sim = FluidTransferSimulator(SharedResourceProvider(100.0))
        transfers = [Transfer("short", 0, 1, 500.0), Transfer("long", 0, 2, 1500.0)]
        results = sim.run(transfers)
        # short: 500 bytes at 50 B/s -> 10 s; long: 500 at 50 then 1000 at 100 -> 20 s
        assert results["short"].duration == pytest.approx(10.0)
        assert results["long"].duration == pytest.approx(20.0)

    def test_staggered_start_times(self):
        sim = FluidTransferSimulator(SharedResourceProvider(100.0))
        transfers = [Transfer("a", 0, 1, 1000.0, start_time=0.0),
                     Transfer("b", 0, 2, 1000.0, start_time=5.0)]
        results = sim.run(transfers)
        assert results["a"].start_time == 0.0
        assert results["b"].start_time == 5.0
        assert results["a"].finish_time < results["b"].finish_time

    def test_zero_size_transfer(self):
        sim = FluidTransferSimulator(ConstantRateProvider(100.0))
        results = sim.run([Transfer("a", 0, 1, 0.0)])
        assert results["a"].duration == pytest.approx(0.0)

    def test_duplicate_ids_rejected(self):
        sim = FluidTransferSimulator(ConstantRateProvider(1.0))
        with pytest.raises(SimulationError):
            sim.run([Transfer("a", 0, 1, 1.0), Transfer("a", 1, 2, 1.0)])

    def test_stalled_simulation_detected(self):
        sim = FluidTransferSimulator(ConstantRateProvider(0.0))
        with pytest.raises(SimulationError):
            sim.run([Transfer("a", 0, 1, 10.0)])

    def test_makespan_and_durations_helpers(self):
        sim = FluidTransferSimulator(ConstantRateProvider(10.0))
        transfers = [Transfer("a", 0, 1, 100.0), Transfer("b", 2, 3, 50.0)]
        durations = sim.durations(transfers)
        assert durations["a"] == pytest.approx(10.0)
        assert sim.makespan(transfers) == pytest.approx(10.0)

    def test_negative_start_time_rejected(self):
        with pytest.raises(SimulationError):
            Transfer("a", 0, 1, 10.0, start_time=-1.0)


class TestStopAndGoNetwork:
    def test_single_transfer_close_to_link_speed(self):
        net = StopAndGoNetwork(MYRINET_2000)
        durations = net.durations([Transfer("a", 0, 1, 4 * MB)])
        expected = 4 * MB / MYRINET_2000.link_bandwidth
        assert durations["a"] == pytest.approx(expected, rel=0.05)

    def test_same_source_transfers_serialise(self):
        """Stop & Go: k concurrent sends from one NIC take ~k times longer each."""
        net = StopAndGoNetwork(MYRINET_2000)
        transfers = [Transfer(i, 0, i + 1, 4 * MB) for i in range(3)]
        penalties = net.penalties(transfers)
        assert all(2.7 <= p <= 3.1 for p in penalties.values())

    def test_same_destination_transfers_serialise(self):
        net = StopAndGoNetwork(MYRINET_2000)
        transfers = [Transfer(i, i + 1, 0, 4 * MB) for i in range(2)]
        penalties = net.penalties(transfers)
        assert all(1.8 <= p <= 2.2 for p in penalties.values())

    def test_independent_transfers_unaffected(self):
        net = StopAndGoNetwork(MYRINET_2000)
        transfers = [Transfer("a", 0, 1, 4 * MB), Transfer("b", 2, 3, 4 * MB)]
        penalties = net.penalties(transfers)
        assert all(p == pytest.approx(1.0, abs=0.05) for p in penalties.values())

    def test_intra_node_transfer_rejected(self):
        net = StopAndGoNetwork(MYRINET_2000)
        with pytest.raises(SimulationError):
            net.simulate([Transfer("a", 0, 0, 1 * MB)])

    def test_invalid_packet_size(self):
        with pytest.raises(SimulationError):
            StopAndGoNetwork(MYRINET_2000, packet_size=0)


class TestCreditBasedNetwork:
    def test_single_transfer(self):
        net = CreditBasedNetwork(INFINIBAND_INFINIHOST3)
        durations = net.durations([Transfer("a", 0, 1, 4 * MB)])
        assert durations["a"] > 0

    def test_same_source_transfers_share_the_hca(self):
        net = CreditBasedNetwork(INFINIBAND_INFINIHOST3)
        transfers = [Transfer(i, 0, i + 1, 4 * MB) for i in range(2)]
        penalties = net.penalties(transfers)
        assert all(1.7 <= p <= 2.2 for p in penalties.values())

    def test_credits_limit_a_hot_receiver(self):
        net = CreditBasedNetwork(INFINIBAND_INFINIHOST3, credits_per_destination=2)
        transfers = [Transfer(i, i + 1, 0, 4 * MB) for i in range(3)]
        penalties = net.penalties(transfers)
        assert all(p >= 2.5 for p in penalties.values())

    def test_independent_transfers_unaffected(self):
        net = CreditBasedNetwork(INFINIBAND_INFINIHOST3)
        transfers = [Transfer("a", 0, 1, 2 * MB), Transfer("b", 2, 3, 2 * MB)]
        penalties = net.penalties(transfers)
        assert all(p == pytest.approx(1.0, abs=0.05) for p in penalties.values())

    def test_invalid_credit_count(self):
        with pytest.raises(SimulationError):
            CreditBasedNetwork(INFINIBAND_INFINIHOST3, credits_per_destination=0)

    def test_duplicate_ids_rejected(self):
        net = CreditBasedNetwork(INFINIBAND_INFINIHOST3)
        with pytest.raises(SimulationError):
            net.simulate([Transfer("a", 0, 1, MB), Transfer("a", 2, 3, MB)])


class TestTransferCalendar:
    """Unit tests of the shared event calendar (epoch staleness, delta bridge)."""

    def test_rates_only_provider_falls_back_to_full_queries(self):
        from repro.network.fluid import TransferCalendar
        calendar = TransferCalendar(ConstantRateProvider(100.0))
        assert calendar.delta is False

    def test_delta_true_requires_an_update_method(self):
        from repro.network.fluid import TransferCalendar
        with pytest.raises(SimulationError):
            TransferCalendar(ConstantRateProvider(100.0), delta=True)

    def test_stale_entries_are_discarded_not_fired(self):
        """A rate change supersedes the old completion entry via the epoch."""
        from repro.network.fluid import TransferCalendar

        class TwoPhase:
            def __init__(self):
                self.calls = 0

            def rates(self, active):
                self.calls += 1
                rate = 10.0 if self.calls == 1 else 20.0
                return {t.transfer_id: rate for t in active}

        calendar = TransferCalendar(TwoPhase())
        calendar.activate(Transfer("a", 0, 1, 100.0), now=0.0)
        calendar.flush(0.0)
        assert calendar.next_time() == pytest.approx(10.0)   # 100 B at 10 B/s
        calendar.activate(Transfer("b", 2, 3, 1000.0), now=1.0)
        calendar.flush(1.0)                                   # re-rates a to 20 B/s
        # a: 90 B left at t=1, now at 20 B/s -> completes at 5.5
        assert calendar.next_time() == pytest.approx(5.5)
        done = calendar.pop_due(5.5)
        assert [t.transfer_id for t in done] == ["a"]
        assert calendar.stats.stale_entries >= 1              # the t=10 entry died

    def test_unchanged_rate_value_keeps_the_entry(self):
        from repro.network.fluid import TransferCalendar
        provider = ConstantRateProvider(50.0)
        calendar = TransferCalendar(provider)
        calendar.activate(Transfer("a", 0, 1, 500.0), now=0.0)
        calendar.flush(0.0)
        first_retimed = calendar.stats.retimed
        calendar.activate(Transfer("b", 2, 3, 500.0), now=2.0)
        calendar.flush(2.0)   # a's rate comes back identical: no re-timing
        assert calendar.stats.retimed == first_retimed + 1    # only b
        assert calendar.next_time() == pytest.approx(10.0)

    def test_fluid_simulator_records_calendar_stats(self):
        sim = FluidTransferSimulator(SharedResourceProvider(100.0))
        sim.run([Transfer("a", 0, 1, 500.0), Transfer("b", 0, 2, 1500.0)])
        stats = sim.last_calendar_stats
        assert stats is not None
        assert stats["activations"] == 2
        assert stats["completions"] == 2
        assert stats["flushes"] >= 2

    def test_delta_and_full_fluid_runs_identical(self):
        """The delta bridge is bit-exact with per-step full re-queries."""
        from repro.core import GigabitEthernetModel
        from repro.simulator.providers import ModelRateProvider

        transfers = [
            Transfer(i, src=i % 3, dst=(i + 1) % 3 + 3, size=40000.0 + 1000.0 * i,
                     start_time=0.002 * i)
            for i in range(8)
        ]
        results = {}
        for delta in (True, False):
            provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
            sim = FluidTransferSimulator(provider, delta=delta)
            results[delta] = sim.run(transfers)
        assert results[True] == results[False]

    def test_provider_dropping_a_live_transfer_is_detected(self):
        """A full-query provider that omits a previously rated transfer from
        a later map must raise, not silently keep the stale rate."""

        class Forgetful:
            def rates(self, active):
                # prices everything on the first call, then drops transfer "a"
                return {t.transfer_id: 100.0 for t in active
                        if t.transfer_id != "a" or len(active) == 1}

        sim = FluidTransferSimulator(Forgetful())
        transfers = [Transfer("a", 0, 1, 1000.0),
                     Transfer("b", 2, 3, 500.0, start_time=1.0)]
        with pytest.raises(SimulationError, match="no rate for"):
            sim.run(transfers)
