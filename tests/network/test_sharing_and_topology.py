"""Tests of the max-min sharing solver and of the topologies."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError, TopologyError
from repro.network import (
    CrossbarTopology,
    FatTreeTopology,
    FlowSpec,
    GIGABIT_ETHERNET,
    MYRINET_2000,
    build_topology,
    max_min_allocation,
)
from repro.network.topology import ResourceKind


class TestMaxMinAllocation:
    def test_empty(self):
        assert max_min_allocation([], {}) == {}

    def test_single_flow_takes_the_resource(self):
        flows = [FlowSpec("a", ("r",))]
        assert max_min_allocation(flows, {"r": 100.0})["a"] == pytest.approx(100.0)

    def test_equal_split(self):
        flows = [FlowSpec("a", ("r",)), FlowSpec("b", ("r",))]
        rates = max_min_allocation(flows, {"r": 100.0})
        assert rates["a"] == pytest.approx(50.0)
        assert rates["b"] == pytest.approx(50.0)

    def test_per_flow_cap_frees_bandwidth_for_others(self):
        flows = [FlowSpec("a", ("r",), cap=10.0), FlowSpec("b", ("r",))]
        rates = max_min_allocation(flows, {"r": 100.0})
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(90.0)

    def test_bottleneck_propagation(self):
        """Classic example: one flow crosses two links, each shared with another flow."""
        flows = [
            FlowSpec("long", ("l1", "l2")),
            FlowSpec("s1", ("l1",)),
            FlowSpec("s2", ("l2",)),
        ]
        rates = max_min_allocation(flows, {"l1": 100.0, "l2": 100.0})
        assert rates["long"] == pytest.approx(50.0)
        assert rates["s1"] == pytest.approx(50.0)
        assert rates["s2"] == pytest.approx(50.0)

    def test_weighted_shares(self):
        flows = [FlowSpec("a", ("r",), weight=2.0), FlowSpec("b", ("r",), weight=1.0)]
        rates = max_min_allocation(flows, {"r": 90.0})
        assert rates["a"] == pytest.approx(60.0)
        assert rates["b"] == pytest.approx(30.0)

    def test_flow_with_no_resources_is_cap_limited(self):
        flows = [FlowSpec("a", (), cap=42.0)]
        assert max_min_allocation(flows, {})["a"] == pytest.approx(42.0)

    def test_conservation_per_resource(self):
        flows = [FlowSpec(f"f{i}", ("r",)) for i in range(7)]
        rates = max_min_allocation(flows, {"r": 70.0})
        assert sum(rates.values()) == pytest.approx(70.0)

    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            max_min_allocation([FlowSpec("a", ("missing",))], {"r": 1.0})

    def test_duplicate_flow_id_rejected(self):
        flows = [FlowSpec("a", ("r",)), FlowSpec("a", ("r",))]
        with pytest.raises(SimulationError):
            max_min_allocation(flows, {"r": 1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_allocation([FlowSpec("a", ("r",))], {"r": -1.0})

    def test_invalid_flow_spec(self):
        with pytest.raises(SimulationError):
            FlowSpec("a", ("r",), cap=0.0)
        with pytest.raises(SimulationError):
            FlowSpec("a", ("r",), weight=0.0)

    def test_zero_capacity_resource_gives_zero_rate(self):
        flows = [FlowSpec("a", ("r",))]
        assert max_min_allocation(flows, {"r": 0.0})["a"] == pytest.approx(0.0)


class TestTopologies:
    def test_crossbar_capacities(self):
        topo = CrossbarTopology(num_hosts=4, technology=GIGABIT_ETHERNET)
        caps = topo.capacities()
        tx, rx = topo.nic_resources(0)
        assert caps[tx] == pytest.approx(GIGABIT_ETHERNET.link_bandwidth)
        assert caps[rx] == pytest.approx(GIGABIT_ETHERNET.link_bandwidth)
        assert caps[topo.memory_resource(0)] == pytest.approx(GIGABIT_ETHERNET.memory_bandwidth)

    def test_crossbar_has_no_fabric_resources(self):
        topo = CrossbarTopology(num_hosts=4, technology=GIGABIT_ETHERNET)
        assert topo.fabric_route(0, 3) == ()

    def test_host_range_checked(self):
        topo = CrossbarTopology(num_hosts=4, technology=GIGABIT_ETHERNET)
        with pytest.raises(TopologyError):
            topo.check_host(4)
        with pytest.raises(TopologyError):
            topo.nic_resources(-1)

    def test_invalid_host_count(self):
        with pytest.raises(TopologyError):
            CrossbarTopology(num_hosts=0, technology=GIGABIT_ETHERNET)

    def test_fat_tree_same_switch_route_is_local(self):
        topo = FatTreeTopology(num_hosts=16, technology=MYRINET_2000,
                               hosts_per_edge=4, uplinks_per_edge=4)
        assert topo.fabric_route(0, 3) == ()

    def test_fat_tree_cross_switch_route(self):
        topo = FatTreeTopology(num_hosts=16, technology=MYRINET_2000,
                               hosts_per_edge=4, uplinks_per_edge=2)
        route = topo.fabric_route(0, 5)
        assert (ResourceKind.UPLINK, 0) in route
        assert (ResourceKind.DOWNLINK, 1) in route

    def test_fat_tree_oversubscription_factor(self):
        topo = FatTreeTopology(num_hosts=16, technology=MYRINET_2000,
                               hosts_per_edge=8, uplinks_per_edge=2)
        assert topo.oversubscription == pytest.approx(4.0)
        caps = topo.capacities()
        assert caps[(ResourceKind.UPLINK, 0)] == pytest.approx(2 * MYRINET_2000.link_bandwidth)

    def test_fat_tree_edge_switch_count(self):
        topo = FatTreeTopology(num_hosts=10, technology=MYRINET_2000, hosts_per_edge=4)
        assert topo.num_edge_switches == 3

    def test_build_topology_factory(self):
        assert isinstance(build_topology(GIGABIT_ETHERNET, 8, "crossbar"), CrossbarTopology)
        assert isinstance(build_topology(GIGABIT_ETHERNET, 8, "fat-tree"), FatTreeTopology)
        with pytest.raises(TopologyError):
            build_topology(GIGABIT_ETHERNET, 8, "torus")

    def test_describe(self):
        topo = FatTreeTopology(num_hosts=16, technology=MYRINET_2000,
                               hosts_per_edge=8, uplinks_per_edge=4)
        assert "oversubscription" in topo.describe()
