"""Degenerate-input tests for the array water-filling path.

The vectorized solver of :mod:`repro.network.sharing` must agree bit for
bit with the scalar reference on the edge cases the array formulation is
most likely to get wrong: empty inputs, single flows, all-infinite caps
(an unbounded allocation), one resource shared by every flow, and weights
spanning six orders of magnitude.
"""

from __future__ import annotations

import math

import pytest

from repro.network.sharing import FlowSpec, max_min_allocation, weighted_max_min_allocation


def both_paths(flows, capacities):
    scalar = weighted_max_min_allocation(flows, capacities, vectorized=False)
    array = weighted_max_min_allocation(flows, capacities, vectorized=True)
    assert scalar == array
    assert all(type(r) is float for r in array.values())
    return array


class TestDegenerateInputs:
    def test_zero_flows(self):
        assert weighted_max_min_allocation([], {"r": 100.0}, vectorized=True) == {}
        assert weighted_max_min_allocation([], {}, vectorized=True) == {}

    def test_single_capped_flow(self):
        flows = [FlowSpec("only", ("link",), cap=30.0)]
        rates = both_paths(flows, {"link": 100.0})
        assert rates == {"only": 30.0}

    def test_single_flow_resource_bound(self):
        flows = [FlowSpec("only", ("link",), cap=500.0)]
        rates = both_paths(flows, {"link": 100.0})
        assert rates == {"only": 100.0}

    def test_all_infinite_caps_no_resources(self):
        """Flows with no constraints at all grow without bound."""
        flows = [FlowSpec(f"f{i}", ()) for i in range(5)]
        rates = both_paths(flows, {})
        assert all(math.isinf(r) for r in rates.values())

    def test_all_infinite_caps_resource_bound(self):
        """Infinite per-flow caps: only the shared capacity binds."""
        flows = [FlowSpec(f"f{i}", ("link",)) for i in range(4)]
        rates = both_paths(flows, {"link": 100.0})
        assert rates == {f"f{i}": pytest.approx(25.0) for i in range(4)}

    def test_mixed_unbounded_and_resource_bound_flows(self):
        flows = [
            FlowSpec("free", ()),
            FlowSpec("bound", ("link",)),
        ]
        rates = both_paths(flows, {"link": 80.0})
        assert rates["bound"] == pytest.approx(80.0)
        assert math.isinf(rates["free"])

    def test_resource_shared_by_every_flow(self):
        flows = [
            FlowSpec(f"f{i}", ("shared", f"own{i}"), cap=1000.0)
            for i in range(16)
        ]
        capacities = {"shared": 160.0}
        capacities.update({f"own{i}": 1e6 for i in range(16)})
        rates = both_paths(flows, capacities)
        assert all(r == pytest.approx(10.0) for r in rates.values())

    def test_zero_capacity_resource_freezes_its_flows(self):
        flows = [FlowSpec("dead", ("off",)), FlowSpec("live", ("on",))]
        rates = both_paths(flows, {"off": 0.0, "on": 50.0})
        assert rates == {"dead": 0.0, "live": 50.0}

    def test_weights_spanning_six_orders_of_magnitude(self):
        weights = [1e-3, 1e-1, 1.0, 1e1, 1e2, 1e3]
        flows = [
            FlowSpec(f"f{i}", ("link",), weight=w) for i, w in enumerate(weights)
        ]
        rates = both_paths(flows, {"link": 1000.0})
        # weighted max-min with one shared bottleneck: rate proportional to weight
        total = sum(weights)
        for i, w in enumerate(weights):
            assert rates[f"f{i}"] == pytest.approx(1000.0 * w / total)

    def test_duplicate_resource_in_one_flow_charges_twice(self):
        flows = [FlowSpec("loop", ("link", "link"))]
        rates = both_paths(flows, {"link": 100.0})
        assert rates == {"loop": pytest.approx(50.0)}

    def test_unweighted_wrapper_dispatches_both_paths(self):
        flows = [FlowSpec("a", ("r",)), FlowSpec("b", ("r",))]
        for vectorized in (None, True, False):
            rates = max_min_allocation(flows, {"r": 10.0}, vectorized=vectorized)
            assert rates == {"a": pytest.approx(5.0), "b": pytest.approx(5.0)}
