"""Warm-started max-min solving and the unified rate cache of the emulator."""

from __future__ import annotations

import pytest

from repro.core import PenaltyCache
from repro.network import EmulatorRateProvider, FatTreeTopology, Transfer, get_technology
from repro.units import MB

ETH = get_technology("ethernet")


def fresh(warm_start=True, cache=None, cache_size=4096, technology=ETH, topology=None):
    return EmulatorRateProvider(technology, topology, num_hosts=16,
                                cache_size=cache_size, cache=cache,
                                warm_start=warm_start)


class TestWarmStart:
    def test_single_arrival_is_warm_started(self):
        provider = fresh(cache_size=0)
        active = [Transfer(0, 0, 1, 20 * MB)]
        provider.rates(active)
        assert provider.warm_starts == 0  # no previous allocation on first call
        active = active + [Transfer(1, 0, 2, 20 * MB)]
        provider.rates(active)
        assert provider.warm_starts == 1

    def test_warm_rates_match_cold_solver(self):
        """One arrival/departure at a time: warm path tracks the full solver."""
        steps = []
        active = []
        for i in range(6):
            active = active + [Transfer(i, i % 4, (i + 1) % 4 + 4, 20 * MB)]
            steps.append(list(active))
        for i in (1, 3):
            active = [t for t in active if t.transfer_id != i]
            steps.append(list(active))

        warm = fresh(cache_size=0)
        cold = fresh(cache_size=0, warm_start=False)
        for step in steps:
            warm_rates = warm.rates(step)
            cold_rates = cold.rates(step)
            for tid in cold_rates:
                assert warm_rates[tid] == pytest.approx(cold_rates[tid], rel=1e-9)
        assert warm.warm_starts > 0
        assert cold.warm_starts == 0

    def test_disjoint_flows_keep_their_previous_rates(self):
        provider = fresh(cache_size=0)
        base = [Transfer(0, 0, 1, 20 * MB), Transfer(1, 2, 3, 20 * MB)]
        first = provider.rates(base)
        second = provider.rates(base + [Transfer(2, 4, 5, 20 * MB)])
        # the newcomer shares no host with 0/1: their floats are untouched
        assert second[0] == first[0]
        assert second[1] == first[1]

    def test_multi_flow_delta_falls_back_to_full_solve(self):
        provider = fresh(cache_size=0)
        provider.rates([Transfer(0, 0, 1, 20 * MB)])
        provider.rates([Transfer(1, 2, 3, 20 * MB), Transfer(2, 4, 5, 20 * MB)])
        assert provider.warm_starts == 0

    def test_reused_id_with_new_endpoints_falls_back(self):
        provider = fresh(cache_size=0)
        provider.rates([Transfer(0, 0, 1, 20 * MB), Transfer(1, 2, 3, 20 * MB)])
        provider.rates([Transfer(0, 5, 6, 20 * MB), Transfer(1, 2, 3, 20 * MB)])
        assert provider.warm_starts == 0

    def test_fat_tree_uplink_couples_cross_switch_flows(self):
        """Flows sharing only a fabric link must be re-solved together."""
        topology = FatTreeTopology(num_hosts=8, technology=ETH,
                                   hosts_per_edge=4, uplinks_per_edge=1)
        provider = EmulatorRateProvider(ETH, topology, cache_size=0)
        active = [Transfer(0, 0, 4, 20 * MB)]
        provider.rates(active)
        active = active + [Transfer(1, 1, 5, 20 * MB)]
        warm = provider.rates(active)
        cold = EmulatorRateProvider(ETH, topology, cache_size=0,
                                    warm_start=False).rates(active)
        for tid in cold:
            assert warm[tid] == pytest.approx(cold[tid], rel=1e-9)


class TestUnifiedRateCache:
    def test_repeated_situation_hits(self):
        provider = fresh()
        active = [Transfer(0, 0, 1, 20 * MB), Transfer(1, 0, 2, 20 * MB)]
        first = provider.rates(active)
        second = provider.rates(list(reversed(active)))  # same multiset of pairs
        assert provider.cache_hits == 1
        assert second == first

    def test_cache_shared_across_providers(self):
        cache = PenaltyCache()
        active = [Transfer(0, 0, 1, 20 * MB), Transfer(1, 0, 2, 20 * MB)]
        a = fresh(cache=cache)
        b = fresh(cache=cache)
        rates_a = a.rates(active)
        rates_b = b.rates(active)
        assert b.cache_hits == 1 and b.cache_misses == 0
        assert rates_b == rates_a

    def test_namespace_separates_technologies(self):
        cache = PenaltyCache()
        active = [Transfer(0, 0, 1, 20 * MB)]
        fresh(cache=cache).rates(active)
        other = fresh(cache=cache, technology=get_technology("myrinet"))
        other.rates(active)
        assert other.cache_hits == 0 and other.cache_misses == 1

    def test_invalidate_clears_cache_and_warm_state(self):
        provider = fresh()
        active = [Transfer(0, 0, 1, 20 * MB)]
        provider.rates(active)
        provider.invalidate_cache()
        provider.rates(active + [Transfer(1, 0, 2, 20 * MB)])
        assert provider.warm_starts == 0  # warm state was dropped too
        assert provider.cache_misses == 2

    def test_invalidate_on_shared_cache_spares_other_providers(self):
        cache = PenaltyCache()
        active = [Transfer(0, 0, 1, 20 * MB)]
        a = fresh(cache=cache)
        b = fresh(cache=cache)
        a.rates(active)
        b.rates(active)     # served from a's entry
        assert b.cache_hits == 1
        b.invalidate_cache()
        b.rates(active)     # b's epoch moved on: must re-solve...
        assert b.cache_misses == 1
        c = fresh(cache=cache)
        c.rates(active)     # ...but a's entry is still there for newcomers
        assert c.cache_hits == 1

    def test_cache_size_zero_disables_memoization(self):
        provider = fresh(cache_size=0)
        active = [Transfer(0, 0, 1, 20 * MB)]
        provider.rates(active)
        provider.rates(active)
        assert provider.cache_hits == 0
