"""Regression tests for the TransferCalendar bugfixes.

Covers the three historical defects fixed together with the interference
subsystem: the unbounded lazy-deletion heap (no compaction), the lost
pending delta when a provider raises mid-flush, and the silent starvation
of zero-rated flights in delta mode.
"""

from __future__ import annotations

import pytest

from repro.core import GigabitEthernetModel
from repro.exceptions import SimulationError
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import Transfer, TransferCalendar
from repro.network.technologies import get_technology
from repro.simulator.providers import ModelRateProvider


class SteppedRateProvider:
    """Full-set provider whose rates change on every query (forces re-timing)."""

    def __init__(self):
        self.calls = 0

    def rates(self, active):
        self.calls += 1
        return {t.transfer_id: 100.0 + self.calls for t in active}


class DeltaEcho:
    """Minimal conforming delta provider: constant rate, reports the delta."""

    def __init__(self, rate=100.0):
        self.rate = rate
        self.active = set()
        self.updates = []

    def update(self, added, removed):
        self.updates.append(([t.transfer_id for t in added], list(removed)))
        for tid in removed:
            self.active.discard(tid)
        changed = {}
        for transfer in added:
            self.active.add(transfer.transfer_id)
            changed[transfer.transfer_id] = self.rate
        return changed

    # constant-rate test double: rates() and update() return the same
    # literal value, so the shim rule's drift hazard cannot arise, and
    # routing through update() would pollute the update-call ledger
    # repro-check: ignore[RC04] — deliberate independent rates() in a test double
    def rates(self, active):
        return {t.transfer_id: self.rate for t in active}

    def reset(self):
        self.active = set()


class TestHeapCompaction:
    def test_long_churn_run_bounds_the_heap(self):
        """Frequent rate changes must not grow the heap without bound."""
        provider = SteppedRateProvider()
        calendar = TransferCalendar(provider, delta=False)
        num_flights = 40
        for i in range(num_flights):
            calendar.activate(Transfer(i, 0, 1, 1e9), now=0.0)
        # every flush re-rates every flight (the provider's rates creep), so
        # without compaction the heap would hold ~rounds * flights entries
        rounds = 200
        for round_no in range(rounds):
            calendar.flush(float(round_no) * 1e-3)
        bound = max(TransferCalendar.COMPACT_MIN_HEAP, 2 * calendar.active_count + 1)
        assert len(calendar._heap) <= bound
        assert calendar.stats.compactions > 0
        # compacted entries count as discarded stale entries: of the
        # rounds*flights pushes, all but the live ones died as stale
        assert calendar.stats.retimed == rounds * num_flights
        assert calendar.stats.stale_entries >= calendar.stats.retimed - len(calendar._heap)

    def test_small_heaps_are_never_compacted(self):
        provider = SteppedRateProvider()
        calendar = TransferCalendar(provider, delta=False)
        calendar.activate(Transfer("a", 0, 1, 1e9), now=0.0)
        for round_no in range(20):
            calendar.flush(float(round_no) * 1e-3)
        assert calendar.stats.compactions == 0

    def test_compaction_preserves_completion_order(self):
        provider = SteppedRateProvider()
        calendar = TransferCalendar(provider, delta=False)
        sizes = {i: 1000.0 * (i + 1) for i in range(50)}
        for i, size in sizes.items():
            calendar.activate(Transfer(i, 0, 1, size), now=0.0)
        for round_no in range(100):
            calendar.flush(float(round_no) * 1e-6)
        assert calendar.stats.compactions > 0
        done = calendar.pop_due(1e9)
        # same rate for everyone: completion must come back ordered by size
        assert [t.transfer_id for t in done] == sorted(sizes, key=sizes.get)


class RaisingProvider:
    """Delta provider that raises on its first N update calls."""

    def __init__(self, failures=1):
        self.failures = failures
        self.calls = 0
        self.applied = []

    def update(self, added, removed):
        self.calls += 1
        if self.calls <= self.failures:
            raise SimulationError("provider exploded mid-flush")
        self.applied.append(([t.transfer_id for t in added], list(removed)))
        return {t.transfer_id: 100.0 for t in added}


class TestFlushAtomicity:
    def test_raising_delta_provider_keeps_the_pending_delta(self):
        provider = RaisingProvider(failures=1)
        calendar = TransferCalendar(provider, delta=True)
        calendar.activate(Transfer("a", 0, 1, 1000.0), now=0.0)
        with pytest.raises(SimulationError):
            calendar.flush(0.0)
        # the delta was not lost: the retry hands the provider the same delta
        calendar.flush(0.0)
        assert provider.applied == [(["a"], [])]
        assert calendar.next_time() == pytest.approx(10.0)

    def test_raising_full_provider_keeps_the_pending_delta(self):
        class FullRaising:
            def __init__(self):
                self.calls = 0

            def rates(self, active):
                self.calls += 1
                if self.calls == 1:
                    raise SimulationError("boom")
                return {t.transfer_id: 100.0 for t in active}

        calendar = TransferCalendar(FullRaising(), delta=False)
        calendar.activate(Transfer("a", 0, 1, 1000.0), now=0.0)
        with pytest.raises(SimulationError):
            calendar.flush(0.0)
        assert "a" in calendar._pending_added  # still queued
        calendar.flush(0.0)
        assert calendar.next_time() == pytest.approx(10.0)

    @pytest.mark.parametrize("provider_factory", [
        lambda: ModelRateProvider(GigabitEthernetModel(), "ethernet"),
        lambda: EmulatorRateProvider(get_technology("ethernet"), num_hosts=4),
    ], ids=["model", "emulator"])
    def test_shipped_providers_validate_before_mutating(self, provider_factory):
        """A rejected delta leaves the provider retryable (nothing half-applied)."""
        provider = provider_factory()
        provider.update([Transfer("a", 0, 1, 1000.0)], [])
        before = dict(provider.rates([Transfer("a", 0, 1, 1000.0)]))
        with pytest.raises(SimulationError):
            # removal of "a" is valid, the duplicate add is not: the provider
            # must reject the delta without untracking "a"
            provider.update([Transfer("b", 2, 3, 1000.0),
                             Transfer("b", 2, 3, 1000.0)], ["a"])
        retry = provider.update([Transfer("b", 2, 3, 1000.0)], ["a"])
        assert set(retry) == {"b"}
        assert provider.rates([Transfer("b", 2, 3, 1000.0)])
        assert before  # sanity: the first allocation existed

    def test_departures_survive_a_raising_provider(self):
        provider = DeltaEcho()
        calendar = TransferCalendar(provider, delta=True)
        calendar.activate(Transfer("a", 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        assert calendar.pop_due(10.0)  # "a" completes, departure queued
        raising = RaisingProvider(failures=1)
        calendar.provider = raising
        calendar.activate(Transfer("b", 0, 1, 1000.0), now=10.0)
        with pytest.raises(SimulationError):
            calendar.flush(10.0)
        calendar.flush(10.0)
        assert raising.applied == [(["b"], ["a"])]


class UnderReportingProvider:
    """Delta provider that 'forgets' to report a chosen transfer's rate.

    Models the bug scenario: the calendar zero-rates the unreported flight
    (missing_rate="zero") and, before the fix, nothing would ever re-rate it
    unless an unrelated delta dirtied its component.  The provider answers
    the retry cycle only once ``allow`` is set, so the test can observe both
    the immediate retry and the next-flush recovery.
    """

    def __init__(self, silent_tid):
        self.silent_tid = silent_tid
        self.allow = False

    def update(self, added, removed):
        changed = {}
        for transfer in added:
            if transfer.transfer_id == self.silent_tid and not self.allow:
                continue
            rate = 50.0 if transfer.transfer_id == self.silent_tid else 100.0
            changed[transfer.transfer_id] = rate
        return changed

    def reset(self):
        pass


class TestZeroRateStall:
    def test_stalled_flight_is_rerated_on_later_flushes(self):
        provider = UnderReportingProvider(silent_tid="slow")
        calendar = TransferCalendar(provider, delta=True, missing_rate="zero")
        calendar.activate(Transfer("slow", 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        # the flush retried the zero-rated flight once already (remove+add
        # cycle); the provider still refused, so it stays tracked as stalled
        assert calendar.stalled_ids() == ("slow",)
        assert calendar.stats.stall_retries == 1
        assert calendar.next_time() is None
        # once the provider can answer, the very next flush re-rates it —
        # even though no arrival or departure is pending
        provider.allow = True
        calendar.flush(1.0)
        assert calendar.stalled_ids() == ()
        assert calendar.stats.stall_retries == 2
        assert calendar.next_time() == pytest.approx(1.0 + 1000.0 / 50.0)

    def test_engine_stall_diagnostic_names_the_transfer(self):
        """With no event able to re-rate the flight, fail fast and name it."""
        from repro.cluster import custom_cluster
        from repro.simulator import Application, Simulator
        from repro.units import MB

        class AlwaysSilent:
            def update(self, added, removed):
                return {}

            def reset(self):
                pass

        cluster = custom_cluster(num_nodes=2, cores_per_node=1,
                                 technology="ethernet")
        app = Application(num_tasks=2)
        app.add_send(0, 1, 1 * MB, tag=1)
        app.add_recv(1, 0, 1 * MB, tag=1)
        sim = Simulator(cluster, AlwaysSilent())
        with pytest.raises(SimulationError) as excinfo:
            sim.run(app, placement="RRN")
        message = str(excinfo.value)
        assert "zero rate" in message
        assert "stalled" in message


class TestCancel:
    def test_cancel_before_flush_never_reaches_the_provider(self):
        provider = DeltaEcho()
        calendar = TransferCalendar(provider, delta=True)
        calendar.activate(Transfer("a", 0, 1, 1000.0), now=0.0)
        calendar.cancel("a", 0.0)
        calendar.flush(0.0)
        assert provider.updates == []  # nothing pending: no update issued
        assert calendar.active_count == 0
        assert calendar.stats.cancelled == 1

    def test_cancel_after_flush_is_a_departure(self):
        provider = DeltaEcho()
        calendar = TransferCalendar(provider, delta=True)
        calendar.activate(Transfer("a", 0, 1, 1000.0), now=0.0)
        calendar.flush(0.0)
        calendar.cancel("a", 1.0)
        calendar.activate(Transfer("b", 0, 1, 1000.0), now=1.0)
        calendar.flush(1.0)
        assert provider.updates[-1] == (["b"], ["a"])
        assert calendar.next_time() == pytest.approx(11.0)
        assert calendar.pop_due(11.0)[0].transfer_id == "b"

    def test_cancel_unknown_transfer_fails(self):
        calendar = TransferCalendar(DeltaEcho(), delta=True)
        with pytest.raises(SimulationError):
            calendar.cancel("ghost", 0.0)
