"""Tests of the calibrated cluster emulator against the paper's Figure 2."""

from __future__ import annotations

import pytest

from repro.analysis import paper_penalties
from repro.core.graph import CommunicationGraph
from repro.exceptions import SimulationError, TopologyError
from repro.network import (
    ClusterEmulator,
    EmulatorRateProvider,
    FatTreeTopology,
    GIGABIT_ETHERNET,
    MYRINET_2000,
    Transfer,
    get_technology,
)
from repro.scheme import figure2_schemes, outgoing_conflict_scheme
from repro.units import MB


class TestTechnologyPresets:
    def test_aliases(self):
        assert get_technology("gige") is GIGABIT_ETHERNET
        assert get_technology("MYRINET") is MYRINET_2000

    def test_unknown_technology(self):
        with pytest.raises(TopologyError):
            get_technology("carrier-pigeon")

    def test_single_stream_bandwidth_below_link(self):
        for name in ("ethernet", "myrinet", "infiniband"):
            tech = get_technology(name)
            assert tech.single_stream_bandwidth < tech.link_bandwidth

    def test_reference_time_scales_with_size(self):
        tech = get_technology("ethernet")
        assert tech.reference_time(20 * MB) > tech.reference_time(4 * MB)

    def test_with_sharing_override(self):
        modified = GIGABIT_ETHERNET.with_sharing(single_stream_efficiency=0.5)
        assert modified.single_stream_bandwidth == pytest.approx(0.5 * GIGABIT_ETHERNET.link_bandwidth)
        assert GIGABIT_ETHERNET.sharing.single_stream_efficiency == 0.75  # original untouched


class TestEmulatorBasics:
    def test_single_flow_penalty_is_one(self, ethernet_emulator):
        graph = CommunicationGraph.from_edges([(0, 1)])
        penalties = ethernet_emulator.measure_penalties(graph)
        assert penalties["a"] == pytest.approx(1.0, abs=1e-6)

    def test_times_scale_with_message_size(self, ethernet_emulator):
        small = CommunicationGraph.from_edges([(0, 1)], size=1 * MB)
        large = CommunicationGraph.from_edges([(0, 1)], size=10 * MB)
        assert ethernet_emulator.measure_times(large)["a"] > ethernet_emulator.measure_times(small)["a"]

    def test_host_outside_topology_rejected(self):
        emulator = ClusterEmulator("ethernet", num_hosts=4)
        graph = CommunicationGraph.from_edges([(0, 10)])
        with pytest.raises(SimulationError):
            emulator.measure_times(graph)

    def test_intra_node_transfer_uses_memory_path(self, ethernet_emulator):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, size=10 * MB, name="local")
        time = ethernet_emulator.measure_times(graph)["local"]
        expected = ethernet_emulator.technology.latency + (
            (10 * MB + ethernet_emulator.technology.mpi_envelope)
            / ethernet_emulator.technology.memory_bandwidth
        )
        assert time == pytest.approx(expected, rel=1e-6)

    def test_describe(self, myrinet_emulator):
        text = myrinet_emulator.describe()
        assert "stop-and-go" in text


class TestFigure2Reproduction:
    """The emulator reproduces the measured penalty ladder of Figure 2."""

    NETWORKS = ("ethernet", "myrinet", "infiniband")

    @pytest.mark.parametrize("network", NETWORKS)
    @pytest.mark.parametrize("scheme", ("S1", "S2", "S3", "S4"))
    def test_low_contention_schemes_within_10_percent(self, network, scheme):
        emulator = ClusterEmulator(network, num_hosts=16)
        graph = figure2_schemes()[scheme]
        measured = emulator.measure_penalties(graph)
        reference = paper_penalties(scheme, network)
        for name, value in reference.items():
            assert measured[name] == pytest.approx(value, rel=0.12), (network, scheme, name)

    @pytest.mark.parametrize("network", NETWORKS)
    def test_income_outgo_schemes_preserve_the_shape(self, network):
        """S5: outgoing communications are hurt more than in S3, incoming share fairly."""
        emulator = ClusterEmulator(network, num_hosts=16)
        s3 = emulator.measure_penalties(figure2_schemes()["S3"])
        s5 = emulator.measure_penalties(figure2_schemes()["S5"])
        assert s5["a"] > s3["a"]                  # second reverse stream hurts the senders
        assert s5["d"] == pytest.approx(s5["e"], rel=1e-6)  # the two incoming flows are symmetric
        assert s5["d"] > 1.5                      # and significantly penalised

    @pytest.mark.parametrize("network,expected", [
        ("ethernet", 2.6), ("myrinet", 2.5), ("infiniband", 2.035),
    ])
    def test_s5_incoming_penalties_close_to_paper(self, network, expected):
        emulator = ClusterEmulator(network, num_hosts=16)
        measured = emulator.measure_penalties(figure2_schemes()["S5"])
        assert measured["d"] == pytest.approx(expected, rel=0.15)

    @pytest.mark.parametrize("network", NETWORKS)
    def test_s6_extra_flow_is_barely_penalised(self, network):
        emulator = ClusterEmulator(network, num_hosts=16)
        measured = emulator.measure_penalties(figure2_schemes()["S6"])
        assert measured["f"] < 1.6

    def test_ethernet_ladder_tracks_beta(self):
        emulator = ClusterEmulator("ethernet", num_hosts=16)
        for fanout in (2, 3, 4):
            graph = outgoing_conflict_scheme(fanout)
            measured = emulator.measure_penalties(graph)
            assert measured["a"] == pytest.approx(0.75 * fanout, rel=0.02)


class TestRateProvider:
    def test_instantaneous_penalties(self):
        provider = EmulatorRateProvider(GIGABIT_ETHERNET, num_hosts=8)
        transfers = [Transfer(i, 0, i + 1, 20 * MB) for i in range(3)]
        penalties = provider.instantaneous_penalties(transfers)
        assert all(p == pytest.approx(2.25, rel=0.01) for p in penalties.values())

    def test_empty_transfer_list(self):
        provider = EmulatorRateProvider(GIGABIT_ETHERNET, num_hosts=8)
        assert provider.rates([]) == {}

    def test_fat_tree_oversubscription_limits_cross_switch_flows(self):
        """With a 4:1 oversubscribed fat tree, many cross-switch flows share the uplink."""
        technology = MYRINET_2000
        topo = FatTreeTopology(num_hosts=8, technology=technology,
                               hosts_per_edge=4, uplinks_per_edge=1)
        provider = EmulatorRateProvider(technology, topo)
        # four flows from switch 0 hosts to switch 1 hosts, distinct endpoints
        transfers = [Transfer(i, i, 4 + i, 20 * MB) for i in range(4)]
        rates = provider.rates(transfers)
        total = sum(rates.values())
        assert total <= technology.link_bandwidth * 1.001  # limited by the single uplink
