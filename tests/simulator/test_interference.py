"""Unit tests of the interference injectors and their engine/fluid wiring."""

from __future__ import annotations

import pytest

from repro.cluster import custom_cluster
from repro.core import GigabitEthernetModel
from repro.exceptions import DeadlockError, SimulationError
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.technologies import get_technology
from repro.simulator import (
    Application,
    BackgroundTrafficInjector,
    EngineConfig,
    LinkDegradationInjector,
    NodeSlowdownInjector,
    Simulator,
    build_injectors,
)
from repro.simulator.providers import ModelRateProvider
from repro.units import KiB, MB


def ring_app(num_tasks=4, size=2 * MB):
    app = Application(num_tasks=num_tasks, name="ring")
    for rank in range(num_tasks):
        app.add_send(rank, (rank + 1) % num_tasks, size, tag=1)
        app.add_recv((rank + 1) % num_tasks, rank, size, tag=1)
    return app


def run_engine(app, cluster, injectors=(), mode="predictive", seed=0):
    config = EngineConfig(injectors=injectors)
    if mode == "emulated":
        sim = Simulator.emulated(cluster, config=config)
    else:
        sim = Simulator.predictive(cluster, config=config)
    report = sim.run(app, placement="RRN", seed=seed)
    return report, sim.last_engine_stats


@pytest.fixture
def cluster():
    return custom_cluster(num_nodes=4, cores_per_node=1, technology="ethernet")


class TestInjectorContracts:
    def test_neutral_configurations_schedule_no_events(self):
        for injector in (
            BackgroundTrafficInjector(rate=0.0, size=1 * MB),
            BackgroundTrafficInjector(rate=10.0, size=0.0),
            BackgroundTrafficInjector(rate=10.0, size=1 * MB, max_flows=0),
            LinkDegradationInjector(factor=1.0),
            NodeSlowdownInjector(factor=1.0),
        ):
            injector.reset()
            assert injector.next_event(0.0) is None

    def test_background_arrivals_are_deterministic_per_seed(self):
        def arrival_times(seed):
            injector = BackgroundTrafficInjector(rate=100.0, size=1 * MB,
                                                 seed=seed, max_flows=5)

            class Recorder:
                hosts = (0, 1, 2, 3)

                def __init__(self):
                    self.flows = []
                    self.now = 0.0

                def start_flow(self, src, dst, size, owner="background"):
                    self.flows.append((self.now, src, dst, size))
                    return len(self.flows)

            recorder = Recorder()
            injector.reset()
            times = []
            while True:
                when = injector.next_event(recorder.now)
                if when is None:
                    break
                recorder.now = when
                times.append(when)
                injector.apply(recorder)
            return times, recorder.flows

        assert arrival_times(7) == arrival_times(7)
        assert arrival_times(7) != arrival_times(8)

    def test_background_window_and_flow_cap(self):
        injector = BackgroundTrafficInjector(rate=1000.0, size=1 * MB, seed=0,
                                             start=1.0, until=1.01)

        class Sink:
            hosts = (0, 1)
            now = 0.0

            def start_flow(self, *a, **k):
                return 0

        injector.reset()
        first = injector.next_event(0.0)
        assert first is not None and first >= 1.0
        sink = Sink()
        fired = 0
        while True:
            when = injector.next_event(sink.now)
            if when is None:
                break
            assert 1.0 <= when < 1.01
            sink.now = when
            injector.apply(sink)
            fired += 1
        assert fired >= 1

    def test_injector_validation(self):
        with pytest.raises(SimulationError):
            BackgroundTrafficInjector(rate=-1.0, size=1.0)
        with pytest.raises(SimulationError):
            LinkDegradationInjector(factor=0.0)
        with pytest.raises(SimulationError):
            NodeSlowdownInjector(factor=0.5, start=2.0, until=1.0)
        with pytest.raises(SimulationError):
            BackgroundTrafficInjector(rate=1.0, size=1.0, pairs=[(2, 2)])

    def test_build_injectors_drops_neutral_sections(self):
        assert build_injectors() == ()
        assert build_injectors(background={"rate": 0.0, "size": 1e6}) == ()
        assert build_injectors(link_degradation={"factor": 1.0}) == ()
        built = build_injectors(
            background={"rate": 10.0, "size": 1e6},
            node_slowdown={"factor": 0.5},
            seed=3,
        )
        assert [type(i).__name__ for i in built] == [
            "BackgroundTrafficInjector", "NodeSlowdownInjector",
        ]
        assert built[0].seed == 3  # campaign seed offsets the injector seed


class TestEngineInjection:
    def test_background_flows_slow_the_foreground_but_stay_invisible(self, cluster):
        app = ring_app()
        clean, clean_stats = run_engine(app, cluster)
        injectors = (BackgroundTrafficInjector(rate=300.0, size=4 * MB, seed=1,
                                               max_flows=20),)
        loaded, stats = run_engine(app, cluster, injectors)
        assert loaded.total_time > clean.total_time
        assert stats["background_flows"] == 20
        assert stats["injected_events"] >= 20
        # the records describe exactly the same foreground events (per rank,
        # in program order — interference may reorder completions across ranks)
        assert sorted((r.rank, r.index, r.kind, r.size) for r in loaded.records) \
            == sorted((r.rank, r.index, r.kind, r.size) for r in clean.records)

    def test_emulated_provider_contends_with_background_traffic(self, cluster):
        app = ring_app()
        clean, _ = run_engine(app, cluster, mode="emulated")
        injectors = (BackgroundTrafficInjector(rate=300.0, size=4 * MB, seed=1,
                                               max_flows=20),)
        loaded, _ = run_engine(app, cluster, injectors, mode="emulated")
        assert loaded.total_time > clean.total_time

    def test_link_degradation_window_slows_covered_transfers(self, cluster):
        app = ring_app()
        clean, _ = run_engine(app, cluster)
        halved = (LinkDegradationInjector(factor=0.5, start=0.0),)
        loaded, _ = run_engine(app, cluster, halved)
        # every transfer runs at half rate for the whole run: the makespan
        # is bounded below by the clean one and above by its double
        assert clean.total_time < loaded.total_time <= 2.0 * clean.total_time + 1e-9
        # a window that closes before any data flows is invisible... but the
        # reprice churn must not change the outcome either
        noop = (LinkDegradationInjector(factor=0.5, start=0.0, until=1e-9),)
        unharmed, _ = run_engine(app, cluster, noop)
        assert unharmed.total_time == pytest.approx(clean.total_time)

    def test_degradation_scoped_to_hosts_spares_other_traffic(self, cluster):
        app = Application(num_tasks=2)
        app.add_send(0, 1, 2 * MB, tag=1)
        app.add_recv(1, 0, 2 * MB, tag=1)
        clean, _ = run_engine(app, cluster)
        elsewhere = (LinkDegradationInjector(factor=0.25, hosts=[3]),)
        untouched, _ = run_engine(app, cluster, elsewhere)
        # RRN places ranks 0/1 on nodes 0/1: degrading node 3 changes nothing
        assert untouched.total_time == pytest.approx(clean.total_time)

    def test_node_slowdown_scales_compute_durations(self, cluster):
        app = Application(num_tasks=2)
        app.add_compute(0, duration=0.1)
        app.add_compute(1, duration=0.1)
        slowdown = (NodeSlowdownInjector(factor=0.5, start=0.0),)
        report, _ = run_engine(app, cluster, slowdown)
        assert report.total_time == pytest.approx(0.2)
        # the scale applies to computes *starting* inside the window: these
        # start at t=0, before the window opens, and keep full speed
        later = (NodeSlowdownInjector(factor=0.5, start=0.05),)
        report, _ = run_engine(app, cluster, later)
        assert report.total_time == pytest.approx(0.1, rel=1e-3)

    def test_deadlock_is_still_detected_under_interference(self, cluster):
        app = Application(num_tasks=2)
        # classic recv-before-send cycle: both ranks block on their receive
        app.add_recv(0, 1, 1 * MB, tag=9)
        app.add_send(0, 1, 1 * MB, tag=9)
        app.add_recv(1, 0, 1 * MB, tag=9)
        app.add_send(1, 0, 1 * MB, tag=9)
        injectors = (BackgroundTrafficInjector(rate=1000.0, size=1 * MB, seed=0),)
        with pytest.raises(DeadlockError):
            run_engine(app, cluster, injectors)

    def test_eager_messages_survive_interference(self, cluster):
        app = Application(num_tasks=2)
        app.add_send(0, 1, 4 * KiB, tag=1)
        app.add_recv(1, 0, 4 * KiB, tag=1)
        injectors = (BackgroundTrafficInjector(rate=500.0, size=2 * MB, seed=2,
                                               max_flows=10),)
        report, _ = run_engine(app, cluster, injectors)
        kinds = {(r.rank, r.kind) for r in report.records}
        assert (0, "send") in kinds and (1, "recv") in kinds


class TestFluidInjection:
    def transfers(self):
        return [Transfer(i, i % 4, (i + 1) % 4, 1 * MB, start_time=0.005 * i)
                for i in range(8)]

    @pytest.mark.parametrize("provider_factory", [
        lambda: ModelRateProvider(GigabitEthernetModel(), "ethernet"),
        lambda: EmulatorRateProvider(get_technology("ethernet"), num_hosts=4),
    ], ids=["model", "emulator"])
    def test_background_flows_excluded_from_results(self, provider_factory):
        injectors = (BackgroundTrafficInjector(rate=200.0, size=2 * MB, seed=4,
                                               max_flows=12),)
        clean = FluidTransferSimulator(provider_factory()).run(self.transfers())
        sim = FluidTransferSimulator(provider_factory(), injectors=injectors)
        loaded = sim.run(self.transfers())
        assert set(loaded) == set(clean)  # only foreground ids come back
        assert sim.last_calendar_stats["activations"] > len(self.transfers())
        assert max(r.finish_time for r in loaded.values()) > \
            max(r.finish_time for r in clean.values())

    def test_degradation_window_reprices_in_flight_transfers(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        single = [Transfer("t", 0, 1, 10 * MB)]
        clean = FluidTransferSimulator(
            ModelRateProvider(GigabitEthernetModel(), "ethernet")
        ).run(single)["t"]
        window = clean.finish_time / 2
        sim = FluidTransferSimulator(
            provider,
            injectors=(LinkDegradationInjector(factor=0.5, start=0.0,
                                               until=window),),
        )
        loaded = sim.run(single)["t"]
        # at half rate for T/2 only a quarter of the bytes move, leaving
        # 3T/4 at full rate: the makespan is exactly 1.25x the clean one
        assert loaded.finish_time == pytest.approx(1.25 * clean.finish_time,
                                                   rel=1e-6)
