"""Tests for the model-side rate provider (incremental path, size rounding)."""

from __future__ import annotations


from repro.core import FairShareModel, GigabitEthernetModel, PenaltyCache
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.technologies import get_technology
from repro.simulator.providers import ModelRateProvider


def transfers(*edges, size=1000.0):
    return [Transfer(transfer_id=i, src=s, dst=d, size=size)
            for i, (s, d) in enumerate(edges)]


class TestFractionalSizeRounding:
    def test_fractional_remaining_bytes_round_up(self):
        """Regression: int(transfer.size) used to truncate 0.4 B to a size-0
        communication mid-simulation."""
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        graph = provider._graph_from_transfers(
            [Transfer(transfer_id=0, src=0, dst=1, size=0.4)]
        )
        assert graph["0"].size == 1

    def test_fractional_sizes_ceil_not_floor(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        graph = provider._graph_from_transfers(
            [Transfer(transfer_id=0, src=0, dst=1, size=1048576.5)]
        )
        assert graph["0"].size == 1048577

    def test_integral_sizes_unchanged(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        graph = provider._graph_from_transfers(
            [Transfer(transfer_id=0, src=0, dst=1, size=2048.0)]
        )
        assert graph["0"].size == 2048

    def test_sub_byte_transfer_still_gets_a_rate(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        rates = provider.rates([Transfer(transfer_id=0, src=0, dst=1, size=0.25)])
        assert rates[0] > 0


class TestIncrementalProvider:
    def test_rates_match_full_recompute(self):
        incremental = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=True)
        full = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=False)
        active = transfers((0, 1), (0, 2), (3, 2), (5, 6))
        assert incremental.rates(active) == full.rates(active)
        # departure of transfer 1, arrival of a new flow
        active = [t for t in active if t.transfer_id != 1]
        active.append(Transfer(transfer_id=9, src=7, dst=6, size=500.0))
        assert incremental.rates(active) == full.rates(active)

    def test_incremental_stats_count_less_work(self):
        incremental = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=True)
        full = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=False)
        base = transfers((0, 1), (2, 3), (4, 5), (6, 7))
        for provider in (incremental, full):
            provider.rates(base)
            for extra in range(8):
                provider.rates(base + [Transfer(transfer_id=100 + extra, src=8, dst=9, size=10.0)])
        assert incremental.stats.comm_evaluations < full.stats.comm_evaluations

    def test_intra_node_transfers_use_memory_path(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        technology = get_technology("ethernet")
        rates = provider.rates([Transfer(transfer_id=0, src=2, dst=2, size=100.0)])
        assert rates[0] == technology.memory_bandwidth

    def test_shared_cache_across_providers(self):
        cache = PenaltyCache()
        first = ModelRateProvider(GigabitEthernetModel(), "ethernet", cache=cache)
        first.rates(transfers((0, 1), (0, 2)))
        second = ModelRateProvider(GigabitEthernetModel(), "ethernet", cache=cache)
        second.rates(transfers((5, 6), (5, 7)))
        assert second.stats.cache_hits == 1
        assert second.stats.comm_evaluations == 0

    def test_empty_active_set(self):
        provider = ModelRateProvider(FairShareModel(), "ethernet")
        assert provider.rates([]) == {}
        assert provider.instantaneous_penalties([]) == {}

    def test_provider_reusable_across_fluid_runs(self):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider)
        batch = transfers((0, 1), (0, 2), (3, 2), size=4000.0)
        first = simulator.durations(batch)
        second = simulator.durations(batch)
        assert first == second

    def test_fluid_results_identical_between_modes(self):
        batch = transfers((0, 1), (0, 2), (1, 2), (3, 4), size=32000.0)
        staggered = [
            Transfer(transfer_id=t.transfer_id, src=t.src, dst=t.dst,
                     size=t.size, start_time=0.001 * t.transfer_id)
            for t in batch
        ]
        results = {}
        for mode in (True, False):
            provider = ModelRateProvider(GigabitEthernetModel(), "ethernet", incremental=mode)
            results[mode] = FluidTransferSimulator(provider).run(staggered)
        assert results[True] == results[False]
