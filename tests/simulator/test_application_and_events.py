"""Tests for events, task traces and applications."""

from __future__ import annotations

import pytest

from repro.exceptions import TraceError
from repro.simulator import (
    ANY_SOURCE,
    Application,
    BarrierEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)
from repro.simulator.events import validate_event
from repro.units import MB


class TestEvents:
    def test_compute_needs_duration_or_flops(self):
        with pytest.raises(TraceError):
            ComputeEvent()
        assert ComputeEvent(duration=1.0).duration == 1.0
        assert ComputeEvent(flops=1e9).flops == 1e9

    def test_compute_rejects_negative(self):
        with pytest.raises(TraceError):
            ComputeEvent(duration=-1.0)
        with pytest.raises(TraceError):
            ComputeEvent(flops=-1.0)

    def test_send_validation(self):
        with pytest.raises(TraceError):
            SendEvent(dst=-1, size=10)
        with pytest.raises(TraceError):
            SendEvent(dst=1, size=-10)

    def test_recv_accepts_any_source(self):
        event = RecvEvent()
        assert event.src == ANY_SOURCE

    def test_validate_event_bounds(self):
        with pytest.raises(TraceError):
            validate_event(SendEvent(dst=5, size=1), num_tasks=4, rank=0)
        with pytest.raises(TraceError):
            validate_event(SendEvent(dst=1, size=1), num_tasks=4, rank=1)  # self send
        with pytest.raises(TraceError):
            validate_event(RecvEvent(src=9), num_tasks=4, rank=0)
        validate_event(BarrierEvent(), num_tasks=4, rank=0)  # no error


class TestApplication:
    def test_build_and_access(self):
        app = Application(num_tasks=3, name="demo")
        app.add_send(0, 1, 1 * MB)
        app.add_recv(1, 0, 1 * MB)
        app.add_compute(2, duration=0.5)
        assert app.trace(0).num_sends == 1
        assert app.trace(1).num_recvs == 1
        assert app.trace(2).compute_seconds == 0.5
        assert app.total_messages == 1
        assert app.total_bytes == 1 * MB

    def test_invalid_rank(self):
        app = Application(num_tasks=2)
        with pytest.raises(TraceError):
            app.trace(5)
        with pytest.raises(TraceError):
            app.add_send(0, 5, 1)

    def test_needs_at_least_one_task(self):
        with pytest.raises(TraceError):
            Application(num_tasks=0)

    def test_barrier_is_global(self):
        app = Application(num_tasks=4)
        app.add_barrier()
        assert all(isinstance(trace.events[0], BarrierEvent) for trace in app)

    def test_pairwise_exchange(self):
        app = Application(num_tasks=2)
        app.add_pairwise_exchange(0, 1, 2 * MB)
        assert app.trace(0).num_sends == 1
        assert app.trace(1).num_recvs == 1

    def test_from_events(self):
        app = Application.from_events([
            [SendEvent(dst=1, size=100)],
            [RecvEvent(src=0)],
        ])
        assert app.num_tasks == 2
        app.validate()

    def test_validate_detects_missing_send(self):
        app = Application(num_tasks=2)
        app.add_recv(1, 0, 100)
        with pytest.raises(TraceError):
            app.validate()

    def test_validate_detects_unmatched_wildcard(self):
        app = Application(num_tasks=3)
        app.add_recv(2)            # wildcard with no send at all
        with pytest.raises(TraceError):
            app.validate()

    def test_validate_accepts_wildcard_covered_by_sends(self):
        app = Application(num_tasks=3)
        app.add_send(0, 2, 100)
        app.add_send(1, 2, 100)
        app.add_recv(2)
        app.add_recv(2)
        app.validate()

    def test_validate_accepts_matched_channels(self):
        app = Application(num_tasks=2)
        app.add_send(0, 1, 100, tag=7)
        app.add_recv(1, 0, 100, tag=7)
        app.validate()

    def test_describe(self):
        app = Application(num_tasks=2, name="demo")
        app.add_send(0, 1, 100)
        app.add_recv(1, 0, 100)
        text = app.describe()
        assert "demo" in text and "rank 0" in text
