"""Tests of the execution engine: MPI semantics, timing, contention, deadlocks."""

from __future__ import annotations

import pytest

from repro.cluster import custom_cluster, user_defined_placement
from repro.core import GigabitEthernetModel, MyrinetModel, NoContentionModel
from repro.exceptions import DeadlockError
from repro.mpi import MpiRuntime, Rank, fanout_program, ring_program
from repro.simulator import (
    ANY_SOURCE,
    Application,
    EngineConfig,
    Simulator,
)
from repro.units import KiB, MB


@pytest.fixture
def cluster():
    return custom_cluster(num_nodes=4, cores_per_node=2, technology="ethernet")


def simple_simulator(cluster, model=None):
    return Simulator.predictive(cluster, model=model or NoContentionModel())


class TestBasicSemantics:
    def test_single_message_duration_matches_cost_model(self, cluster):
        app = Application(num_tasks=2, name="one-message")
        app.add_send(0, 1, 10 * MB)
        app.add_recv(1, 0, 10 * MB)
        sim = simple_simulator(cluster)
        report = sim.run(app, placement="RRN")
        tech = cluster.technology
        expected = tech.latency + (10 * MB + tech.mpi_envelope) / tech.single_stream_bandwidth
        assert report.communication_time(0) == pytest.approx(expected, rel=1e-6)
        assert report.total_time == pytest.approx(expected, rel=1e-6)

    def test_compute_event_duration(self, cluster):
        app = Application(num_tasks=1)
        app.add_compute(0, duration=0.25)
        report = simple_simulator(cluster).run(app)
        assert report.total_time == pytest.approx(0.25)
        assert report.compute_time(0) == pytest.approx(0.25)

    def test_compute_event_from_flops(self, cluster):
        app = Application(num_tasks=1)
        app.add_compute(0, flops=4.0e9)
        config = EngineConfig(compute_efficiency=1.0)
        report = Simulator.predictive(cluster, model=NoContentionModel(), config=config).run(app)
        assert report.total_time == pytest.approx(1.0)  # 4 GFLOP at 4 GFLOP/s

    def test_intra_node_message_uses_memory_bandwidth(self, cluster):
        app = Application(num_tasks=2)
        app.add_send(0, 1, 10 * MB)
        app.add_recv(1, 0, 10 * MB)
        # both ranks on node 0
        placement = user_defined_placement(cluster, [0, 0])
        report = simple_simulator(cluster).run(app, placement=placement)
        expected = (10 * MB + cluster.technology.mpi_envelope) / cluster.technology.memory_bandwidth
        assert report.communication_time(0) == pytest.approx(expected, rel=1e-6)

    def test_rendezvous_send_waits_for_late_receiver(self, cluster):
        """A large send cannot finish before the receiver posts its recv."""
        app = Application(num_tasks=2)
        app.add_send(0, 1, 10 * MB)
        app.add_compute(1, duration=1.0)
        app.add_recv(1, 0, 10 * MB)
        report = simple_simulator(cluster).run(app, placement="RRN")
        send = report.records_for(0, "send")[0]
        assert send.duration > 1.0           # includes the wait for the rendezvous
        assert report.total_time > 1.0

    def test_eager_send_completes_without_receiver(self, cluster):
        """A small (eager) message does not block on the receiver's recv."""
        app = Application(num_tasks=2)
        app.add_send(0, 1, 4 * KiB)
        app.add_compute(1, duration=1.0)
        app.add_recv(1, 0, 4 * KiB)
        report = simple_simulator(cluster).run(app, placement="RRN")
        send = report.records_for(0, "send")[0]
        assert send.duration < 0.5
        recv = report.records_for(1, "recv")[0]
        assert recv.end >= 1.0                # posted after the compute

    def test_any_source_receive(self, cluster):
        app = Application(num_tasks=3)
        app.add_send(1, 0, 1 * MB)
        app.add_send(2, 0, 1 * MB)
        app.add_recv(0, ANY_SOURCE)
        app.add_recv(0, ANY_SOURCE)
        report = simple_simulator(cluster).run(app, placement="RRN")
        recvs = report.records_for(0, "recv")
        assert {r.peer for r in recvs} == {1, 2}

    def test_barrier_synchronises_everyone(self, cluster):
        app = Application(num_tasks=3)
        app.add_compute(0, duration=1.0)
        app.add_compute(1, duration=0.1)
        app.add_compute(2, duration=0.5)
        app.add_barrier()
        app.add_compute(1, duration=0.1)
        report = simple_simulator(cluster).run(app, placement="RRN")
        barrier_end = report.records_for(1, "barrier")[0].end
        assert barrier_end == pytest.approx(1.0)
        assert report.task_time(1) == pytest.approx(1.1)

    def test_tags_separate_channels(self, cluster):
        """An eager tag-1 message parked at the receiver does not satisfy a tag-2 recv."""
        app = Application(num_tasks=2)
        app.add_send(0, 1, 4 * KiB, tag=1)    # eager: completes without a matching recv
        app.add_send(0, 1, 2 * MB, tag=2)     # rendezvous
        app.add_recv(1, 0, tag=2)
        app.add_recv(1, 0, tag=1)
        report = simple_simulator(cluster).run(app, placement="RRN")
        recvs = report.records_for(1, "recv")
        assert recvs[0].size == 2 * MB       # the tag-2 message matched the first recv
        assert recvs[1].size == 4 * KiB

    def test_deadlock_detected(self, cluster):
        app = Application(num_tasks=2)
        app.add_recv(0, 1)
        app.add_recv(1, 0)
        with pytest.raises(DeadlockError) as excinfo:
            simple_simulator(cluster).run(app, placement="RRN", validate=False)
        assert set(excinfo.value.blocked_tasks) == {0, 1}

    def test_report_bookkeeping(self, cluster):
        app = Application(num_tasks=2, name="bookkeeping")
        app.add_send(0, 1, 1 * MB)
        app.add_recv(1, 0, 1 * MB)
        report = simple_simulator(cluster).run(app, placement="RRN")
        assert report.num_tasks == 2
        assert report.bytes_sent(0) == 1 * MB
        assert report.bytes_sent(1) == 0
        assert "bookkeeping" in report.summary()
        assert "task" in report.per_task_table()


class TestContentionTiming:
    def test_concurrent_sends_from_one_node_slow_down(self, cluster):
        """Two ranks on one node sending 20 MB each: the Ethernet model predicts 1.5x."""
        app = Application(num_tasks=4, name="outgoing-conflict")
        app.add_send(0, 2, 20 * MB)
        app.add_send(1, 3, 20 * MB)
        app.add_recv(2, 0, 20 * MB)
        app.add_recv(3, 1, 20 * MB)
        placement = user_defined_placement(cluster, [0, 0, 1, 2])
        sim = Simulator.predictive(cluster, model=GigabitEthernetModel())
        report = sim.run(app, placement=placement)
        sends = report.records_for(0, "send") + report.records_for(1, "send")
        assert all(s.penalty == pytest.approx(1.5, rel=0.01) for s in sends)

    def test_no_contention_model_keeps_unit_penalties(self, cluster):
        app = Application(num_tasks=4)
        app.add_send(0, 2, 20 * MB)
        app.add_send(1, 3, 20 * MB)
        app.add_recv(2, 0, 20 * MB)
        app.add_recv(3, 1, 20 * MB)
        placement = user_defined_placement(cluster, [0, 0, 1, 2])
        report = simple_simulator(cluster).run(app, placement=placement)
        assert report.average_penalty == pytest.approx(1.0, abs=1e-6)

    def test_emulated_and_predicted_agree_without_contention(self, cluster):
        app = Application(num_tasks=2)
        app.add_send(0, 1, 20 * MB)
        app.add_recv(1, 0, 20 * MB)
        predicted = Simulator.predictive(cluster).run(app, placement="RRN")
        emulated = Simulator.emulated(cluster).run(app, placement="RRN")
        assert predicted.communication_time(0) == pytest.approx(
            emulated.communication_time(0), rel=1e-6
        )

    def test_staggered_transfers_free_bandwidth(self, cluster):
        """When the short transfer ends, the long one accelerates (fluid dynamics)."""
        app = Application(num_tasks=4)
        app.add_send(0, 2, 30 * MB)
        app.add_send(1, 3, 10 * MB)
        app.add_recv(2, 0, 30 * MB)
        app.add_recv(3, 1, 10 * MB)
        placement = user_defined_placement(cluster, [0, 0, 1, 2])
        sim = Simulator.predictive(cluster, model=GigabitEthernetModel())
        report = sim.run(app, placement=placement)
        long_send = report.records_for(0, "send")[0]
        # penalty of the long transfer is an average between 1.5 (shared) and 1 (alone)
        assert 1.0 < long_send.penalty < 1.5


class TestMpiRuntime:
    def test_ring_program_runs(self, cluster):
        runtime = MpiRuntime.predictive(cluster)
        report = runtime.run(ring_program, num_tasks=6, placement="RRN", args=(2 * MB, 1))
        assert report.num_tasks == 6
        assert all(report.records_for(r, "send") for r in range(6))

    def test_fanout_program_reproduces_outgoing_conflict(self, cluster):
        runtime = MpiRuntime.predictive(cluster, model=MyrinetModel())
        placement = user_defined_placement(cluster, [0, 0, 1, 2])
        report = runtime.simulator.run_programs(
            [fanout_program(Rank(i, 4), 20 * MB, 2) for i in range(4)],
            placement=placement, num_tasks=4,
        )
        sends = [r for r in report.send_records]
        assert len(sends) == 2
        assert all(s.penalty == pytest.approx(2.0, rel=0.01) for s in sends)

    def test_recv_result_contains_actual_source(self, cluster):
        observed = {}

        def program(rank: Rank):
            if rank.id == 0:
                result = yield rank.recv()
                observed["source"] = result["source"]
            else:
                yield rank.send(0, 1 * MB)

        runtime = MpiRuntime.predictive(cluster)
        runtime.run(program, num_tasks=2, placement="RRN")
        assert observed["source"] == 1

    def test_non_generator_program_rejected(self, cluster):
        runtime = MpiRuntime.predictive(cluster)

        def not_a_generator(rank):
            return [rank.barrier()]

        with pytest.raises(Exception):
            runtime.run(not_a_generator, num_tasks=2)


class TestIterationBudgetDiagnostics:
    def test_budget_error_describes_the_stuck_state(self, cluster):
        """An engine that exhausts its budget reports time, task states and
        in-flight counts instead of a bare one-liner."""

        from repro.simulator.engine import ExecutionEngine
        from repro.simulator.events import ComputeEvent
        from repro.cluster import make_placement
        from repro.core import NoContentionModel
        from repro.simulator.providers import ModelRateProvider
        from repro.exceptions import SimulationError

        def forever():
            while True:
                yield ComputeEvent(duration=0.001)

        engine = ExecutionEngine(
            programs=[forever()],
            placement=make_placement("RRN", cluster, 1),
            rate_provider=ModelRateProvider(NoContentionModel(), "ethernet"),
            technology="ethernet",
            config=EngineConfig(iteration_factor=1),
        )
        with pytest.raises(SimulationError) as excinfo:
            engine.run()
        message = str(excinfo.value)
        assert "exceeded its iteration budget" in message
        assert "tasks by status" in message
        assert "ready=1" in message
        assert "in-flight transfers: 0" in message
        assert "t=" in message


class TestMatchingOrder:
    def test_wildcard_recv_posted_first_wins(self, cluster):
        """A wildcard recv posted before a specific one matches first —
        posted-order tie-breaking across the wildcard/specific buckets."""
        app = Application(num_tasks=3)
        app.add_recv(0, ANY_SOURCE, tag=7)     # posted first
        app.add_recv(0, 2, tag=7)              # specific, posted second
        app.add_send(1, 0, 2 * MB, tag=7)
        app.add_send(2, 0, 2 * MB, tag=7)
        report = simple_simulator(cluster).run(app, placement="RRN")
        recvs = report.records_for(0, "recv")
        # rank 1's send (processed first) matches the wildcard recv
        assert recvs[0].peer == 1
        assert recvs[1].peer == 2

    def test_eager_arrivals_match_in_arrival_order(self, cluster):
        """Parked eager messages are consumed oldest-arrival-first."""
        app = Application(num_tasks=2)
        app.add_send(0, 1, 4 * KiB, tag=3, label="first")
        app.add_send(0, 1, 4 * KiB, tag=3, label="second")
        app.add_compute(1, duration=1.0)       # both messages park at rank 1
        app.add_recv(1, 0, tag=3)
        app.add_recv(1, 0, tag=3)
        report = simple_simulator(cluster).run(app, placement="RRN")
        recvs = report.records_for(1, "recv")
        assert [r.size for r in recvs] == [4 * KiB, 4 * KiB]
        sends = report.records_for(0, "send")
        assert sends[0].end <= sends[1].end

    def test_unclaimed_flight_attach_prefers_earliest_posted(self, cluster):
        """A late wildcard recv attaches to the earliest-posted in-flight
        transfer, not an arbitrary one."""
        app = Application(num_tasks=3)
        app.add_compute(2, duration=0.001)
        app.add_send(1, 0, 30 * MB, tag=1)     # rendezvous-size but recv below
        app.add_send(2, 0, 30 * MB, tag=1)     # posted ~0.001 s later
        app.add_recv(0, ANY_SOURCE, tag=1)
        app.add_recv(0, ANY_SOURCE, tag=1)
        report = simple_simulator(cluster).run(app, placement="RRN")
        recvs = report.records_for(0, "recv")
        assert recvs[0].peer == 1              # earliest posted send first


class TestDeltaEngineWork:
    def test_delta_mode_retimes_fewer_transfers(self, cluster):
        """On a contended workload the delta engine re-prices only dirtied
        components while the full-requery engine touches every transfer."""
        big = custom_cluster(num_nodes=16, cores_per_node=1, technology="ethernet")
        app = Application(num_tasks=16)
        for group in range(4):
            leader = group * 4
            # stagger the groups so one group's completions leave the other
            # groups' conflict components untouched
            for offset in range(4):
                app.add_compute(leader + offset, duration=0.003 * group)
            for member in range(1, 4):
                app.add_send(leader + member, leader, (5 + group) * MB, tag=group)
                app.add_recv(leader, member + leader, tag=group)
        outcomes = {}
        for delta in (True, False):
            sim = Simulator.predictive(
                big, model=GigabitEthernetModel(),
                config=EngineConfig(delta_rates=delta),
            )
            report = sim.run(app, placement="RRP")
            outcomes[delta] = (report.records, sim.last_engine_stats)
        records_delta, stats_delta = outcomes[True]
        records_full, stats_full = outcomes[False]
        assert records_delta == records_full
        assert stats_delta["rate_updates"] < stats_full["rate_updates"]
