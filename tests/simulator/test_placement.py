"""Tests of the placement policies (RRN, RRP, Random, user defined)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    custom_cluster,
    make_placement,
    random_placement,
    round_robin_per_node,
    round_robin_per_processor,
    user_defined_placement,
)
from repro.exceptions import SchedulingError


@pytest.fixture
def cluster():
    return custom_cluster(num_nodes=4, cores_per_node=2, technology="ethernet")


class TestRoundRobinPerNode:
    def test_tasks_spread_across_nodes_first(self, cluster):
        placement = round_robin_per_node(cluster, 8)
        assert placement.node_of_rank == (0, 1, 2, 3, 0, 1, 2, 3)

    def test_fewer_tasks_than_nodes(self, cluster):
        placement = round_robin_per_node(cluster, 3)
        assert placement.node_of_rank == (0, 1, 2)

    def test_cores_assigned_incrementally(self, cluster):
        placement = round_robin_per_node(cluster, 8)
        assert placement.core_of_rank[0] == 0
        assert placement.core_of_rank[4] == 1

    def test_policy_label(self, cluster):
        assert round_robin_per_node(cluster, 4).policy == "RRN"


class TestRoundRobinPerProcessor:
    def test_nodes_filled_first(self, cluster):
        placement = round_robin_per_processor(cluster, 8)
        assert placement.node_of_rank == (0, 0, 1, 1, 2, 2, 3, 3)
        assert placement.core_of_rank == (0, 1, 0, 1, 0, 1, 0, 1)

    def test_same_node_detection(self, cluster):
        placement = round_robin_per_processor(cluster, 8)
        assert placement.same_node(0, 1)
        assert not placement.same_node(1, 2)

    def test_capacity_check(self, cluster):
        with pytest.raises(SchedulingError):
            round_robin_per_processor(cluster, 9)

    def test_oversubscription_allowed_when_requested(self, cluster):
        placement = round_robin_per_processor(cluster, 12, oversubscribe=True)
        assert placement.num_tasks == 12


class TestRandomPlacement:
    def test_deterministic_given_seed(self, cluster):
        a = random_placement(cluster, 6, seed=42)
        b = random_placement(cluster, 6, seed=42)
        assert a.node_of_rank == b.node_of_rank

    def test_different_seeds_differ(self, cluster):
        a = random_placement(cluster, 8, seed=1)
        b = random_placement(cluster, 8, seed=2)
        assert a.node_of_rank != b.node_of_rank

    def test_no_core_oversubscription_without_flag(self, cluster):
        placement = random_placement(cluster, 8, seed=0)
        pairs = list(zip(placement.node_of_rank, placement.core_of_rank))
        assert len(set(pairs)) == 8

    def test_nodes_within_cluster(self, cluster):
        placement = random_placement(cluster, 8, seed=3)
        assert all(0 <= n < cluster.num_nodes for n in placement.node_of_rank)


class TestUserDefinedPlacement:
    def test_explicit_mapping(self, cluster):
        placement = user_defined_placement(cluster, [0, 0, 0, 1])
        assert placement.node_of_rank == (0, 0, 0, 1)
        assert placement.core_of_rank == (0, 1, 2, 0)
        assert placement.ranks_on_node(0) == (0, 1, 2)

    def test_invalid_node_rejected(self, cluster):
        with pytest.raises(SchedulingError):
            user_defined_placement(cluster, [0, 9])

    def test_tasks_per_node(self, cluster):
        placement = user_defined_placement(cluster, [0, 0, 1])
        assert placement.tasks_per_node() == {0: 2, 1: 1}


class TestFactoryAndAccessors:
    @pytest.mark.parametrize("policy,expected_first_two", [
        ("RRN", (0, 1)),
        ("rrp", (0, 0)),
    ])
    def test_make_placement(self, cluster, policy, expected_first_two):
        placement = make_placement(policy, cluster, 4)
        assert placement.node_of_rank[:2] == expected_first_two

    def test_make_placement_random(self, cluster):
        placement = make_placement("random", cluster, 4, seed=5)
        assert placement.num_tasks == 4

    def test_unknown_policy(self, cluster):
        with pytest.raises(SchedulingError):
            make_placement("round-robin-per-rack", cluster, 4)

    def test_rank_bounds_checked(self, cluster):
        placement = round_robin_per_node(cluster, 4)
        with pytest.raises(SchedulingError):
            placement.node(10)

    def test_describe(self, cluster):
        text = round_robin_per_node(cluster, 4).describe()
        assert "node 0" in text
