"""Regression tests: SimulationReport helpers on empty / degenerate records.

These edge cases surfaced while porting the helpers onto trace-backed
records (``repro.analysis.timeline.records_from_trace`` feeds rebuilt
records through the same API): a trace with no sends, a zero-event trace,
or an out-of-range rank must behave exactly like the live-report cases.
"""

from __future__ import annotations

from repro._numpy import np
import pytest

from repro.simulator.report import EventRecord, SimulationReport


def empty_report(num_tasks: int = 2) -> SimulationReport:
    return SimulationReport(
        application_name="empty", model_name="m", placement_policy="RRP",
        num_tasks=num_tasks,
    )


class TestEmptyRecords:
    def test_time_aggregates_are_floats(self):
        report = empty_report()
        for value in (report.communication_time(0), report.receive_time(0),
                      report.compute_time(0), report.total_time):
            assert isinstance(value, float)
            assert value == 0.0
        assert report.communication_times() == {0: 0.0, 1: 0.0}

    def test_out_of_range_rank_is_empty_not_an_error(self):
        report = empty_report()
        assert report.records_for(99) == []
        assert report.records_for(-1, "send") == []
        assert report.communication_time(99) == 0.0
        assert report.task_time(99) == 0.0

    def test_penalties_default_to_one(self):
        report = empty_report()
        assert report.average_penalty == 1.0
        assert report.max_penalty == 1.0

    def test_penalty_histogram_empty_shape(self):
        counts, edges = empty_report().penalty_histogram(bins=4)
        assert counts.shape == (4,)
        assert edges.shape == (5,)
        assert counts.sum() == 0
        assert edges[0] == 1.0 and edges[-1] == 2.0

    def test_penalty_histogram_rejects_bad_bins_consistently(self):
        # the empty path used to accept bins=0 silently while the numpy
        # path raised — both must reject it now
        with pytest.raises(ValueError):
            empty_report().penalty_histogram(bins=0)
        loaded = empty_report()
        loaded.records.append(EventRecord(
            rank=0, index=0, kind="send", start=0.0, end=1.0, size=1,
            peer=1, penalty=1.5,
        ))
        with pytest.raises(ValueError):
            loaded.penalty_histogram(bins=0)

    def test_tables_render_without_records(self):
        report = empty_report()
        table = report.per_task_table()
        assert table.count("\n") == 3  # header + rule + 2 task rows
        assert "0.0000" in table
        assert "empty" in report.summary()


class TestDegenerateRecords:
    def test_sends_without_penalty_are_excluded_from_penalty_stats(self):
        report = empty_report()
        report.records.append(EventRecord(
            rank=0, index=0, kind="send", start=0.0, end=1.0, size=10,
            peer=1, penalty=None,
        ))
        assert report.average_penalty == 1.0
        counts, _ = report.penalty_histogram(bins=3)
        assert counts.sum() == 0
        assert report.communication_time(0) == 1.0

    def test_single_penalty_value_histogram(self):
        report = empty_report()
        report.records.append(EventRecord(
            rank=0, index=0, kind="send", start=0.0, end=1.0, size=10,
            peer=1, penalty=2.25,
        ))
        counts, edges = report.penalty_histogram(bins=5)
        assert counts.sum() == 1
        assert edges.shape == (6,)
        assert np.all(np.diff(edges) > 0)  # non-degenerate bin widths

    def test_kind_filter(self):
        report = empty_report()
        report.records.append(EventRecord(
            rank=1, index=0, kind="recv", start=0.5, end=1.5, size=10, peer=0,
        ))
        assert report.records_for(1, "send") == []
        assert len(report.records_for(1, "recv")) == 1
        assert report.receive_time(1) == 1.0
        assert report.bytes_sent(1) == 0
