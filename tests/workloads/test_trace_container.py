"""Application traces in the unified JSONL container format."""

from __future__ import annotations

import pytest

from repro.exceptions import TraceError
from repro.simulator import ANY_SOURCE, Application
from repro.trace import JsonlTraceSink, TraceRecord, read_trace_log
from repro.workloads import generate_linpack
from repro.workloads.traces import (
    application_to_records,
    read_trace,
    records_to_application,
    write_trace,
)


def labelled_application() -> Application:
    app = Application(num_tasks=3, name="container-app")
    app.add_compute(0, duration=0.125, label="panel")
    app.add_compute(1, flops=2.4e9, label="dgemm")
    app.add_send(0, dst=1, size=1_048_576, tag=7, label="bcast")
    app.add_recv(1, src=0, size=1_048_576, tag=7, label="bcast")
    app.add_recv(2, src=ANY_SOURCE, size=None, tag=0, label="steal")
    app.add_send(0, dst=2, size=64, tag=0)
    app.add_barrier(label="sync")
    return app


def apps_equal(a: Application, b: Application) -> bool:
    if a.num_tasks != b.num_tasks or a.name != b.name:
        return False
    return all(
        list(a.trace(rank)) == list(b.trace(rank))
        for rank in range(a.num_tasks)
    )


class TestJsonlContainer:
    def test_round_trip_preserves_labels(self, tmp_path):
        app = labelled_application()
        path = write_trace(app, tmp_path / "app.jsonl", format="jsonl")
        rebuilt = read_trace(path)
        assert apps_equal(rebuilt, app)
        # the text format loses labels — the container is the upgrade path
        text_rebuilt = read_trace(write_trace(app, tmp_path / "app.trace"))
        assert text_rebuilt.trace(0).events[0].label == ""
        assert rebuilt.trace(0).events[0].label == "panel"

    def test_read_trace_autodetects_both_formats(self, tmp_path):
        app = generate_linpack(problem_size=1000, block_size=250, num_tasks=4)
        text_path = write_trace(app, tmp_path / "hpl.trace", format="text")
        jsonl_path = write_trace(app, tmp_path / "hpl.jsonl", format="jsonl")
        from_text = read_trace(text_path)
        from_jsonl = read_trace(jsonl_path)
        assert apps_equal(from_jsonl, app)
        assert from_text.num_tasks == from_jsonl.num_tasks
        assert [len(from_text.trace(r)) for r in range(4)] == \
            [len(from_jsonl.trace(r)) for r in range(4)]

    def test_empty_application_round_trips(self, tmp_path):
        app = Application(num_tasks=2, name="empty")
        path = write_trace(app, tmp_path / "empty.jsonl", format="jsonl")
        rebuilt = read_trace(path)
        assert rebuilt.num_tasks == 2
        assert rebuilt.name == "empty"
        assert all(len(rebuilt.trace(r)) == 0 for r in range(2))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_trace(labelled_application(), tmp_path / "x", format="xml")

    def test_records_shape(self):
        records = application_to_records(labelled_application())
        assert records[0].kind == "app.meta"
        assert records[0].data == {"num_tasks": 3, "name": "container-app"}
        kinds = [r.kind for r in records[1:]]
        assert set(kinds) <= {"app.compute", "app.send", "app.recv",
                              "app.barrier"}
        # wildcard receives serialise src as None
        recv = next(r for r in records if r.kind == "app.recv"
                    and r.subject == 2)
        assert recv.data["src"] is None

    def test_app_records_can_live_inside_a_mixed_trace(self, tmp_path):
        """An application container embedded in a simulation trace reads back."""
        path = tmp_path / "mixed.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit(TraceRecord(0.0, "calendar.activate", "t0",
                                  {"src": 0, "dst": 1, "size": 1.0}))
            for record in application_to_records(labelled_application()):
                sink.emit(record)
            sink.emit(TraceRecord(1.0, "calendar.complete", "t0", {}))
        rebuilt = records_to_application(read_trace_log(path))
        assert apps_equal(rebuilt, labelled_application())

    def test_global_barrier_subject_and_bad_ranks(self):
        """``subject="*"`` is the documented global-barrier form; other
        non-integer subjects fail inside the TraceError hierarchy."""
        meta = TraceRecord(0.0, "app.meta", None, {"num_tasks": 2, "name": ""})
        app = records_to_application([
            meta,
            TraceRecord(0.0, "app.barrier", "*", {"label": "sync"}),
        ])
        for rank in range(2):
            events = list(app.trace(rank))
            assert len(events) == 1 and events[0].label == "sync"
        with pytest.raises(TraceError):
            records_to_application([
                meta, TraceRecord(0.0, "app.compute", "north",
                                  {"duration": 1.0}),
            ])

    def test_missing_meta_is_an_error(self):
        with pytest.raises(TraceError):
            records_to_application([
                TraceRecord(0.0, "app.send", 0,
                            {"dst": 1, "size": 10, "tag": 0}),
            ])

    def test_duplicate_meta_is_an_error(self):
        meta = TraceRecord(0.0, "app.meta", None, {"num_tasks": 2, "name": ""})
        with pytest.raises(TraceError):
            records_to_application([meta, meta])
