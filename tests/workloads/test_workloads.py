"""Tests of the workload generators: Linpack, synthetic schemes, collectives, traces."""

from __future__ import annotations

import io

import networkx as nx
import pytest

from repro.exceptions import TraceError, WorkloadError
from repro.simulator import Application, ComputeEvent, SendEvent
from repro.workloads import (
    LinpackParameters,
    apply_tracing_overhead,
    binomial_broadcast,
    bipartite_fan_scheme,
    broadcast_application,
    complete_graph_scheme,
    flat_gather,
    generate_linpack,
    hotspot_scheme,
    hpl_total_flops,
    pairwise_exchange_alltoall,
    random_graph_scheme,
    random_tree_scheme,
    read_trace,
    ring_allgather,
    scheme_family,
    trace_to_text,
    write_trace,
)
from repro.units import MB


class TestLinpackGenerator:
    def test_parameters_validation(self):
        with pytest.raises(WorkloadError):
            LinpackParameters(problem_size=0)
        with pytest.raises(WorkloadError):
            LinpackParameters(num_tasks=1)
        with pytest.raises(WorkloadError):
            LinpackParameters(panel_fraction=0.0)

    def test_total_flops_formula(self):
        assert hpl_total_flops(1000) == pytest.approx((2 / 3) * 1e9 + 2e6)

    def test_panel_count(self):
        params = LinpackParameters(problem_size=2000, block_size=100, num_tasks=4)
        assert params.num_panels == 20

    def test_ring_structure(self):
        """Every panel travels the ring: P-1 sends per panel, task n -> task n+1."""
        app = generate_linpack(problem_size=1000, block_size=250, num_tasks=4)
        sends = [(trace.rank, e.dst) for trace in app for e in trace if isinstance(e, SendEvent)]
        assert len(sends) == 4 * 3            # 4 panels x (P-1) hops
        assert all(dst == (src + 1) % 4 for src, dst in sends)

    def test_message_sizes_shrink_over_panels(self):
        app = generate_linpack(problem_size=2000, block_size=200, num_tasks=4)
        sizes_per_panel = {}
        for trace in app:
            for event in trace:
                if isinstance(event, SendEvent):
                    sizes_per_panel.setdefault(event.tag, set()).add(event.size)
        panels = sorted(sizes_per_panel)
        first = max(sizes_per_panel[panels[0]])
        last = max(sizes_per_panel[panels[-1]])
        assert last < first

    def test_trace_validates(self):
        app = generate_linpack(problem_size=1200, block_size=300, num_tasks=3)
        app.validate()

    def test_every_task_computes(self):
        app = generate_linpack(problem_size=1000, block_size=250, num_tasks=4)
        for trace in app:
            assert any(isinstance(e, ComputeEvent) for e in trace)

    def test_panel_fraction_truncates(self):
        full = generate_linpack(problem_size=2000, block_size=100, num_tasks=4)
        half = generate_linpack(problem_size=2000, block_size=100, num_tasks=4,
                                panel_fraction=0.5)
        assert half.total_messages == full.total_messages // 2

    def test_conflicting_parameter_styles_rejected(self):
        with pytest.raises(WorkloadError):
            generate_linpack(LinpackParameters(), problem_size=100)


class TestSyntheticSchemes:
    def test_random_tree_is_a_tree(self):
        graph = random_tree_scheme(9, seed=3)
        undirected = nx.Graph((c.src, c.dst) for c in graph)
        assert nx.is_tree(undirected)
        assert len(graph) == 8

    def test_random_tree_deterministic(self):
        a = random_tree_scheme(8, seed=1)
        b = random_tree_scheme(8, seed=1)
        assert a.to_edge_list() == b.to_edge_list()

    def test_complete_graph_pair_coverage(self):
        graph = complete_graph_scheme(6, seed=0)
        pairs = {frozenset((c.src, c.dst)) for c in graph}
        assert len(pairs) == 15

    def test_random_graph_respects_counts(self):
        graph = random_graph_scheme(num_nodes=5, num_communications=7, seed=2)
        assert len(graph) == 7
        assert all(c.src != c.dst for c in graph)

    def test_random_graph_too_many_pairs_rejected(self):
        with pytest.raises(WorkloadError):
            random_graph_scheme(num_nodes=3, num_communications=10, seed=0)

    def test_bipartite_fan(self):
        graph = bipartite_fan_scheme(2, 3)
        assert len(graph) == 6
        assert all(c.src in (0, 1) and c.dst in (2, 3, 4) for c in graph)

    def test_hotspot(self):
        graph = hotspot_scheme(4, hotspot=0)
        assert all(c.dst == 0 for c in graph)
        assert len(graph) == 4

    def test_scheme_family(self):
        family = scheme_family("tree", [4, 6, 8], seed=0)
        assert [len(g.nodes) for g in family] == [4, 6, 8]
        with pytest.raises(WorkloadError):
            scheme_family("hypercube", [4])

    def test_message_size_propagates(self):
        graph = complete_graph_scheme(4, size=2 * MB)
        assert all(c.size == 2 * MB for c in graph)


class TestCollectives:
    def test_binomial_broadcast_message_count(self):
        app = broadcast_application(num_tasks=8, size=1 * MB)
        assert app.total_messages == 7
        app.validate()

    def test_binomial_broadcast_nonzero_root(self):
        app = Application(num_tasks=6)
        binomial_broadcast(app, root=2, size=1 * MB)
        app.validate()
        assert app.total_messages == 5

    def test_ring_allgather_message_count(self):
        app = Application(num_tasks=5)
        ring_allgather(app, size=1 * MB)
        assert app.total_messages == 5 * 4
        app.validate()

    def test_flat_gather_hits_the_root(self):
        app = Application(num_tasks=6)
        flat_gather(app, root=0, size=1 * MB)
        assert app.trace(0).num_recvs == 5
        app.validate()

    def test_alltoall_requires_power_of_two(self):
        app = Application(num_tasks=6)
        with pytest.raises(WorkloadError):
            pairwise_exchange_alltoall(app, size=1 * MB)

    def test_alltoall_message_count(self):
        app = Application(num_tasks=4)
        pairwise_exchange_alltoall(app, size=1 * MB)
        assert app.total_messages == 4 * 3
        app.validate()


class TestTraces:
    def _sample_app(self):
        app = Application(num_tasks=3, name="sample")
        app.add_compute(0, duration=0.5)
        app.add_compute(1, flops=1e9)
        app.add_send(0, 1, 1 * MB, tag=3)
        app.add_recv(1, 0, 1 * MB, tag=3)
        app.add_send(2, 1, 4096)
        app.add_recv(1)
        app.add_barrier()
        return app

    def test_round_trip(self, tmp_path):
        app = self._sample_app()
        path = write_trace(app, tmp_path / "trace.txt")
        loaded = read_trace(path)
        assert loaded.num_tasks == app.num_tasks
        assert loaded.total_messages == app.total_messages
        assert loaded.total_bytes == app.total_bytes
        assert loaded.trace(0).compute_seconds == pytest.approx(0.5)

    def test_read_from_file_object(self):
        text = trace_to_text(self._sample_app())
        loaded = read_trace(io.StringIO(text))
        assert loaded.num_tasks == 3

    def test_missing_header_rejected(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("0 compute 1.0\n"))

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("tasks 2\n0 send onlyonearg\n"))

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("tasks 2\n0 teleport 1\n"))

    def test_tracing_overhead_scales_compute_only(self):
        app = self._sample_app()
        inflated = apply_tracing_overhead(app, overhead=0.10)
        assert inflated.trace(0).compute_seconds == pytest.approx(0.55)
        assert inflated.total_messages == app.total_messages

    def test_negative_overhead_rejected(self):
        with pytest.raises(TraceError):
            apply_tracing_overhead(self._sample_app(), overhead=-0.1)
