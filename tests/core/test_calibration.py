"""Tests for the parameter estimation (§V.A calibration protocol)."""

from __future__ import annotations

import pytest

from repro.benchmark import PenaltyTool
from repro.core import (
    CalibrationMeasurement,
    EthernetParameters,
    GigabitEthernetModel,
    InfinibandModel,
    InfinibandParameters,
    calibrate_from_measurer,
    estimate_beta,
    estimate_beta_from_times,
    estimate_gammas,
    fit_ethernet_parameters,
    fit_infiniband_parameters,
)
from repro.exceptions import CalibrationError
from repro.scheme import figure2_schemes, figure4_scheme, outgoing_conflict_scheme


class TestBetaEstimation:
    def test_paper_values(self):
        """The paper: β = 1.5/2 = 2.25/3 = 0.75."""
        assert estimate_beta({2: 1.5, 3: 2.25}) == pytest.approx(0.75)

    def test_averaging_over_fanouts(self):
        assert estimate_beta({2: 1.6, 4: 3.2}) == pytest.approx(0.8)

    def test_from_times(self):
        assert estimate_beta_from_times({2: 0.30, 3: 0.45}, reference_time=0.2) == pytest.approx(0.75)

    def test_requires_fanout_of_at_least_two(self):
        with pytest.raises(CalibrationError):
            estimate_beta({1: 1.0})

    def test_requires_positive_penalties(self):
        with pytest.raises(CalibrationError):
            estimate_beta({2: 0.0})

    def test_requires_measurements(self):
        with pytest.raises(CalibrationError):
            estimate_beta({})

    def test_requires_positive_reference(self):
        with pytest.raises(CalibrationError):
            estimate_beta_from_times({2: 0.3}, reference_time=0.0)


class TestGammaEstimation:
    def test_paper_formula_round_trip(self):
        """γ estimated from times generated with known γ must come back."""
        beta, gamma_o, gamma_i, tref = 0.75, 0.115, 0.036, 0.05
        time_a = 3 * beta * (1 - gamma_o) * tref
        time_f = 3 * beta * (1 - gamma_i) * tref
        est_o, est_i = estimate_gammas(time_a, time_f, tref, beta)
        assert est_o == pytest.approx(gamma_o)
        assert est_i == pytest.approx(gamma_i)

    def test_invalid_inputs(self):
        with pytest.raises(CalibrationError):
            estimate_gammas(0.0, 0.1, 0.05, 0.75)
        with pytest.raises(CalibrationError):
            estimate_gammas(0.1, 0.1, 0.05, 0.0)
        with pytest.raises(CalibrationError):
            estimate_gammas(0.1, 0.1, 0.05, 0.75, fanout=1)

    def test_implausible_measurement_rejected(self):
        # a time far larger than 3·β·t_ref would give γ < -0.5
        with pytest.raises(CalibrationError):
            estimate_gammas(time_a=1.0, time_f=0.1, reference_time=0.05, beta=0.75)


class TestLeastSquaresFits:
    def _measurements_from_model(self, model):
        graphs = [figure2_schemes()["S2"], figure2_schemes()["S3"],
                  figure2_schemes()["S4"], figure4_scheme()]
        return [CalibrationMeasurement(g, model.penalties(g)) for g in graphs]

    def test_fit_recovers_known_ethernet_parameters(self):
        true = EthernetParameters(beta=0.8, gamma_o=0.2, gamma_i=0.05)
        measurements = self._measurements_from_model(GigabitEthernetModel(true))
        fitted = fit_ethernet_parameters(measurements)
        assert fitted.beta == pytest.approx(true.beta, abs=0.02)
        assert fitted.gamma_o == pytest.approx(true.gamma_o, abs=0.05)
        assert fitted.gamma_i == pytest.approx(true.gamma_i, abs=0.05)

    def test_fit_requires_measurements(self):
        with pytest.raises(CalibrationError):
            fit_ethernet_parameters([])

    def test_fit_requires_complete_penalties(self):
        graph = figure2_schemes()["S2"]
        with pytest.raises(CalibrationError):
            fit_ethernet_parameters([CalibrationMeasurement(graph, {"a": 1.5})])

    def test_fit_infiniband_recovers_cross_terms(self):
        true = InfinibandParameters(beta=0.87, lambda_o=0.3, lambda_i=0.05)
        model = InfinibandModel(true)
        graphs = [figure2_schemes()[k] for k in ("S2", "S3", "S4", "S5")]
        measurements = [CalibrationMeasurement(g, model.penalties(g)) for g in graphs]
        fitted = fit_infiniband_parameters(measurements)
        assert fitted.beta == pytest.approx(0.87, abs=0.02)
        assert fitted.lambda_o == pytest.approx(0.3, abs=0.05)


class TestCalibrationAgainstEmulator:
    def test_protocol_recovers_plausible_ethernet_parameters(self):
        """Running the paper's protocol against the GigE emulator yields β≈0.75."""
        tool = PenaltyTool("ethernet", iterations=1, num_hosts=16)
        params = calibrate_from_measurer(tool.measure_penalties)
        assert params.beta == pytest.approx(0.75, abs=0.03)
        assert 0.0 <= params.gamma_o < 0.3
        assert 0.0 <= params.gamma_i < 0.3

    def test_calibrated_model_matches_emulator_on_the_ladder(self):
        tool = PenaltyTool("ethernet", iterations=1, num_hosts=16)
        params = calibrate_from_measurer(tool.measure_penalties)
        model = GigabitEthernetModel(params)
        graph = outgoing_conflict_scheme(3)
        measured = tool.measure_penalties(graph)
        predicted = model.penalties(graph)
        for name in measured:
            assert predicted[name] == pytest.approx(measured[name], rel=0.05)
