"""Tests of the Myrinet state-set model (§V.B) against Figures 5 and 6."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.core import ConflictRule, MyrinetModel
from repro.core.graph import CommunicationGraph
from repro.core.myrinet_model import maximal_independent_sets
from repro.exceptions import ModelError
from repro.scheme import figure2_schemes, mk2_complete
from repro.workloads.synthetic import random_graph_scheme


class TestMaximalIndependentSets:
    def test_empty_graph(self):
        assert maximal_independent_sets({}) == []

    def test_single_vertex(self):
        assert maximal_independent_sets({"a": frozenset()}) == [frozenset({"a"})]

    def test_two_connected_vertices(self):
        adjacency = {"a": frozenset({"b"}), "b": frozenset({"a"})}
        sets = maximal_independent_sets(adjacency)
        assert sets == [frozenset({"a"}), frozenset({"b"})]

    def test_two_isolated_vertices(self):
        adjacency = {"a": frozenset(), "b": frozenset()}
        assert maximal_independent_sets(adjacency) == [frozenset({"a", "b"})]

    def test_triangle(self):
        adjacency = {
            "a": frozenset({"b", "c"}),
            "b": frozenset({"a", "c"}),
            "c": frozenset({"a", "b"}),
        }
        sets = maximal_independent_sets(adjacency)
        assert len(sets) == 3
        assert all(len(s) == 1 for s in sets)

    def test_path_graph(self):
        # a - b - c : maximal independent sets are {a, c} and {b}
        adjacency = {
            "a": frozenset({"b"}),
            "b": frozenset({"a", "c"}),
            "c": frozenset({"b"}),
        }
        sets = maximal_independent_sets(adjacency)
        assert frozenset({"a", "c"}) in sets
        assert frozenset({"b"}) in sets
        assert len(sets) == 2

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx_complement_cliques(self, seed):
        """Our Bron-Kerbosch equals maximal cliques of the complement graph."""
        graph = random_graph_scheme(num_nodes=6, num_communications=8, seed=seed)
        adjacency = graph.conflict_adjacency()
        ours = set(maximal_independent_sets(adjacency))
        nxg = nx.Graph()
        nxg.add_nodes_from(adjacency)
        for u, neighbours in adjacency.items():
            for v in neighbours:
                nxg.add_edge(u, v)
        reference = {frozenset(c) for c in nx.find_cliques(nx.complement(nxg))}
        assert ours == reference

    @pytest.mark.parametrize("seed", range(5))
    def test_every_set_is_independent_and_maximal(self, seed):
        graph = random_graph_scheme(num_nodes=7, num_communications=10, seed=100 + seed)
        adjacency = graph.conflict_adjacency()
        sets = maximal_independent_sets(adjacency)
        assert sets, "at least one maximal independent set must exist"
        for candidate in sets:
            # independence
            for u, v in itertools.combinations(candidate, 2):
                assert v not in adjacency[u]
            # maximality: every vertex outside conflicts with someone inside
            for outside in set(adjacency) - set(candidate):
                assert adjacency[outside] & candidate


class TestFigure5Example:
    def test_number_of_state_sets(self, myrinet_model, fig5):
        assert myrinet_model.analyse(fig5).num_state_sets == 5

    def test_emission_sums_match_figure6(self, myrinet_model, fig5):
        analysis = myrinet_model.analyse(fig5)
        assert analysis.emission == {"a": 1, "b": 2, "c": 2, "d": 2, "e": 2, "f": 3}

    def test_per_source_minimum_matches_figure6(self, myrinet_model, fig5):
        analysis = myrinet_model.analyse(fig5)
        assert analysis.adjusted_emission == {"a": 1, "b": 1, "c": 1, "d": 2, "e": 2, "f": 2}

    def test_penalties_match_figure6(self, myrinet_model, fig5):
        analysis = myrinet_model.analyse(fig5)
        assert analysis.penalties == {
            "a": 5.0, "b": 5.0, "c": 5.0, "d": 2.5, "e": 2.5, "f": 2.5,
        }

    def test_table_rendering_contains_the_rows(self, myrinet_model, fig5):
        text = myrinet_model.analyse(fig5).table()
        assert "Sum" in text and "Minimum" in text and "penalty" in text

    def test_non_decomposed_analysis_is_equivalent(self, fig5):
        merged = MyrinetModel(decompose=False).penalties(fig5)
        decomposed = MyrinetModel(decompose=True).penalties(fig5)
        assert merged == decomposed


class TestFigure2Agreement:
    @pytest.mark.parametrize("scheme,comm,expected", [
        ("S1", "a", 1.0),
        ("S2", "a", 2.0),     # paper measured 1.9
        ("S3", "a", 3.0),     # paper measured 2.8
        ("S4", "a", 3.0),     # unchanged by a single reverse stream (paper 2.8)
        ("S4", "d", 1.0),     # paper measured 1.45
        ("S5", "a", 3.0),     # paper measured 4.4 (income/outgo underestimated)
        ("S5", "d", 2.0),     # paper measured 2.5
    ])
    def test_ladder_predictions(self, myrinet_model, scheme, comm, expected):
        graph = figure2_schemes()[scheme]
        assert myrinet_model.penalties(graph)[comm] == pytest.approx(expected)


class TestModelProperties:
    def test_single_communication(self, myrinet_model):
        graph = CommunicationGraph.from_edges([(0, 1)])
        assert myrinet_model.penalties(graph) == {"a": 1.0}

    def test_independent_communications_have_unit_penalty(self, myrinet_model):
        graph = CommunicationGraph.from_edges([(0, 1), (2, 3), (4, 5)])
        assert all(p == 1.0 for p in myrinet_model.penalties(graph).values())

    def test_outgoing_fanout_penalty_equals_fanout(self, myrinet_model):
        for fanout in (2, 3, 4, 5):
            edges = [(0, i + 1) for i in range(fanout)]
            graph = CommunicationGraph.from_edges(edges)
            assert all(
                p == pytest.approx(float(fanout))
                for p in myrinet_model.penalties(graph).values()
            )

    def test_intra_node_communications_ignored(self, myrinet_model):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, name="local")
        graph.add_edge(0, 1, name="x")
        graph.add_edge(0, 2, name="y")
        penalties = myrinet_model.penalties(graph)
        assert penalties["local"] == 1.0
        assert penalties["x"] == pytest.approx(2.0)

    def test_component_cap_raises(self):
        model = MyrinetModel(max_component_size=3)
        graph = mk2_complete()
        with pytest.raises(ModelError):
            model.penalties(graph)

    def test_unknown_conflict_rule_rejected(self):
        with pytest.raises(ModelError):
            MyrinetModel(conflict_rule="bogus")

    def test_decomposition_equals_global_enumeration_on_disconnected_graph(self):
        # two independent outgoing conflicts
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6), (5, 7), (5, 8)])
        merged = MyrinetModel(decompose=False).penalties(graph)
        decomposed = MyrinetModel(decompose=True).penalties(graph)
        assert merged == pytest.approx(decomposed)
        assert decomposed["a"] == pytest.approx(2.0)
        assert decomposed["c"] == pytest.approx(3.0)

    def test_details_are_consistent(self, myrinet_model, fig5):
        details = myrinet_model.details(fig5)
        for name, info in details.items():
            assert info["penalty"] >= 1.0
            assert info["adjusted_emission"] <= info["emission"]

    def test_any_node_rule_is_a_distinct_valid_variant(self, fig5):
        endpoint = MyrinetModel(conflict_rule=ConflictRule.ENDPOINT).penalties(fig5)
        any_node = MyrinetModel(conflict_rule=ConflictRule.ANY_NODE).penalties(fig5)
        assert all(p >= 1.0 for p in any_node.values())
        # the stricter rule changes the combinatorics on this graph (ablation knob)
        assert any_node != endpoint
