"""Tests for the conflict taxonomy, the penalty abstractions and the model registry."""

from __future__ import annotations

import pytest

from repro.core import (
    ConflictKind,
    GigabitEthernetModel,
    InfinibandModel,
    LinearCostModel,
    MyrinetModel,
    available_models,
    classify_communication,
    classify_graph,
    get_model,
    model_for_network,
    register_model,
)
from repro.core.graph import CommunicationGraph
from repro.core.penalty import PenaltyPrediction
from repro.exceptions import ModelError
from repro.scheme import figure2_schemes
from repro.units import MB


class TestConflictClassification:
    def test_single_communication_has_no_conflict(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        conflicts = classify_communication(graph, "a")
        assert conflicts.kinds == frozenset({ConflictKind.NONE})
        assert not conflicts.is_conflicted

    def test_outgoing_conflict(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        assert ConflictKind.OUTGOING in classify_communication(graph, "a").kinds

    def test_incoming_conflict(self):
        graph = CommunicationGraph.from_edges([(1, 0), (2, 0)])
        assert ConflictKind.INCOMING in classify_communication(graph, "a").kinds

    def test_income_outgo_conflict_at_source(self):
        graph = figure2_schemes()["S4"]
        kinds = classify_communication(graph, "a").kinds
        assert ConflictKind.OUTGOING in kinds
        assert ConflictKind.INCOME_OUTGO_SOURCE in kinds

    def test_income_outgo_conflict_at_destination(self):
        graph = figure2_schemes()["S4"]
        kinds = classify_communication(graph, "d").kinds
        assert ConflictKind.INCOME_OUTGO_DESTINATION in kinds
        assert ConflictKind.OUTGOING not in kinds

    def test_report_counts(self):
        report = classify_graph(figure2_schemes()["S4"])
        counts = report.kind_counts
        assert counts[ConflictKind.OUTGOING] == 3
        assert counts[ConflictKind.NONE] == 0
        assert report.max_out_degree == 3
        assert report.max_in_degree == 1

    def test_report_summary_text(self):
        report = classify_graph(figure2_schemes()["S3"])
        text = report.summary()
        assert "outgoing conflicts" in text
        assert "3" in text

    def test_conflict_free_names(self):
        graph = CommunicationGraph.from_edges([(0, 1), (2, 3)])
        report = classify_graph(graph)
        assert set(report.conflict_free_names) == {"a", "b"}
        assert report.conflicted_names == ()


class TestLinearCostModel:
    def test_reference_time(self):
        cost = LinearCostModel(latency=1e-3, bandwidth=100 * MB)
        assert cost.time(100 * MB) == pytest.approx(1.0 + 1e-3)

    def test_envelope_makes_zero_length_meaningful(self):
        cost = LinearCostModel(latency=0.0, bandwidth=100 * MB, envelope=64)
        assert cost.time(0) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            LinearCostModel(latency=-1, bandwidth=1)
        with pytest.raises(ModelError):
            LinearCostModel(latency=0, bandwidth=0)

    def test_effective_bandwidth_below_nominal(self):
        cost = LinearCostModel(latency=1e-3, bandwidth=100 * MB)
        assert cost.effective_bandwidth(1 * MB) < 100 * MB

    def test_negative_size_rejected(self):
        cost = LinearCostModel(latency=0, bandwidth=1)
        with pytest.raises(ModelError):
            cost.time(-5)


class TestPenaltyPrediction:
    def test_accessors(self):
        prediction = PenaltyPrediction(
            model_name="m", graph_name="g",
            penalties={"a": 2.0, "b": 1.0}, times={"a": 0.2, "b": 0.1},
        )
        assert prediction.penalty("a") == 2.0
        assert prediction.time("b") == 0.1
        assert prediction.mean_penalty == pytest.approx(1.5)
        assert prediction.max_penalty == 2.0

    def test_missing_key_raises(self):
        prediction = PenaltyPrediction("m", "g", {"a": 1.0})
        with pytest.raises(ModelError):
            prediction.penalty("zzz")
        with pytest.raises(ModelError):
            prediction.time("a")


class TestRegistry:
    def test_builtin_models_present(self):
        names = available_models()
        for expected in ("ethernet", "myrinet", "infiniband", "no-contention",
                         "fair-share", "kim-lee"):
            assert expected in names

    def test_get_model_instantiates(self):
        assert isinstance(get_model("ethernet"), GigabitEthernetModel)
        assert isinstance(get_model("myrinet"), MyrinetModel)
        assert isinstance(get_model("infiniband"), InfinibandModel)

    def test_get_model_unknown(self):
        with pytest.raises(ModelError):
            get_model("does-not-exist")

    @pytest.mark.parametrize("alias,expected_type", [
        ("gige", GigabitEthernetModel),
        ("Gigabit-Ethernet", GigabitEthernetModel),
        ("mx", MyrinetModel),
        ("myrinet-2000", MyrinetModel),
        ("ib", InfinibandModel),
        ("infinihost3", InfinibandModel),
    ])
    def test_network_aliases(self, alias, expected_type):
        assert isinstance(model_for_network(alias), expected_type)

    def test_network_alias_unknown(self):
        with pytest.raises(ModelError):
            model_for_network("token-ring")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ModelError):
            register_model("ethernet", GigabitEthernetModel)

    def test_register_and_overwrite(self):
        register_model("test-custom-model", GigabitEthernetModel, overwrite=True)
        assert "test-custom-model" in available_models()
        register_model("test-custom-model", MyrinetModel, overwrite=True)
        assert isinstance(get_model("test-custom-model"), MyrinetModel)


class TestRegistryErrorMessages:
    def test_unknown_network_lists_aliases_and_models(self):
        from repro.core import available_networks
        with pytest.raises(ModelError) as excinfo:
            model_for_network("token-ring")
        message = str(excinfo.value)
        # every alias and every registered model must be discoverable from
        # the error alone
        for alias in ("gige", "ethernet", "mx", "ib", "infinihost3"):
            assert alias in message
        for model_name in ("myrinet", "infiniband", "no-contention"):
            assert model_name in message
        assert set(available_networks()) >= {"gige", "mx", "ib"}

    def test_unknown_model_lists_available_models(self):
        with pytest.raises(ModelError) as excinfo:
            get_model("does-not-exist")
        message = str(excinfo.value)
        for model_name in ("ethernet", "myrinet", "infiniband", "fair-share"):
            assert model_name in message

    def test_get_model_hints_at_network_alias(self):
        # "gige" is a network alias, not a model name: the error should say so
        with pytest.raises(ModelError) as excinfo:
            get_model("gige")
        message = str(excinfo.value)
        assert "alias" in message
        assert "model_for_network" in message
        assert "'ethernet'" in message
