"""Tests of the InfiniBand extension model and the related-work baselines."""

from __future__ import annotations

import pytest

from repro.core import (
    FairShareModel,
    InfinibandParameters,
    KimLeeModel,
    LinearCostModel,
    LogGPContentionAdapter,
    LogGPCostModel,
    LogPCostModel,
    NoContentionModel,
)
from repro.core.graph import CommunicationGraph
from repro.exceptions import ModelError
from repro.scheme import figure2_schemes, outgoing_conflict_scheme
from repro.units import MB


class TestInfinibandModel:
    def test_single_communication(self, infiniband_model):
        graph = CommunicationGraph.from_edges([(0, 1)])
        assert infiniband_model.penalties(graph) == {"a": 1.0}

    @pytest.mark.parametrize("fanout,paper", [(2, 1.725), (3, 2.61)])
    def test_outgoing_ladder_matches_paper(self, infiniband_model, fanout, paper):
        graph = outgoing_conflict_scheme(fanout)
        penalties = infiniband_model.penalties(graph)
        assert all(p == pytest.approx(paper, abs=0.02) for p in penalties.values())

    def test_single_reverse_stream_barely_penalised(self, infiniband_model):
        """Figure 2 scheme 4: d measured at 1.14 on InfiniHost III."""
        graph = figure2_schemes()["S4"]
        penalties = infiniband_model.penalties(graph)
        assert penalties["d"] == pytest.approx(1.14, abs=0.02)
        assert penalties["a"] == pytest.approx(2.61, abs=0.02)

    def test_second_reverse_stream_degrades_the_senders(self, infiniband_model):
        """Figure 2 scheme 5: outgoing penalties jump from 2.61 to ~3.66."""
        s4 = infiniband_model.penalties(figure2_schemes()["S4"])
        s5 = infiniband_model.penalties(figure2_schemes()["S5"])
        assert s5["a"] > s4["a"]
        assert s5["a"] == pytest.approx(3.66, abs=0.2)
        assert s5["d"] == pytest.approx(2.035, abs=0.2)

    def test_parameters_validation(self):
        with pytest.raises(ModelError):
            InfinibandParameters(beta=-1)
        with pytest.raises(ModelError):
            InfinibandParameters(lambda_o=-0.1)
        with pytest.raises(ModelError):
            InfinibandParameters(gamma_i=1.2)

    def test_symmetry_of_the_ladder(self, infiniband_model):
        graph = outgoing_conflict_scheme(3)
        penalties = infiniband_model.penalties(graph)
        assert len(set(round(p, 9) for p in penalties.values())) == 1

    def test_details_contain_cross_terms(self, infiniband_model):
        graph = figure2_schemes()["S5"]
        details = infiniband_model.details(graph)
        assert details["a"]["reverse_at_source"] == 2.0
        assert details["d"]["forward_at_destination"] == 3.0


class TestNoContentionModel:
    def test_everything_is_one(self):
        graph = figure2_schemes()["S5"]
        penalties = NoContentionModel().penalties(graph)
        assert set(penalties.values()) == {1.0}


class TestFairShareModel:
    def test_max_of_degrees(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (3, 2)])
        penalties = FairShareModel().penalties(graph)
        assert penalties["a"] == 2.0      # Δo = 2
        assert penalties["b"] == 2.0      # max(Δo=2, Δi=2)
        assert penalties["c"] == 2.0      # Δi = 2

    def test_intra_node_is_one(self):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, name="local")
        assert FairShareModel().penalties(graph)["local"] == 1.0


class TestKimLeeModel:
    def test_endpoint_sharing_multiplier(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (0, 3), (4, 3)])
        penalties = KimLeeModel().penalties(graph)
        assert penalties["a"] == 3.0
        assert penalties["c"] == 3.0   # max(Δo=3, Δi=2)
        assert penalties["d"] == 2.0

    def test_custom_path_provider(self):
        # both communications share one artificial backbone link
        graph = CommunicationGraph.from_edges([(0, 1), (2, 3)])
        model = KimLeeModel(path_provider=lambda comm: [("backbone", 0)])
        penalties = model.penalties(graph)
        assert penalties == {"a": 2.0, "b": 2.0}

    def test_underestimates_ethernet_measured_sharing(self, ethernet_model):
        """Kim & Lee ignores β < 1: it predicts k where GigE measures 0.75·k."""
        graph = outgoing_conflict_scheme(3)
        kim = KimLeeModel().penalties(graph)["a"]
        ethernet = ethernet_model.penalties(graph)["a"]
        assert kim == 3.0
        assert ethernet == pytest.approx(2.25)


class TestLogPModels:
    def test_logp_single_fragment(self):
        model = LogPCostModel(L=5e-6, o=1e-6, g=2e-6, fragment_size=1024)
        assert model.time(100) == pytest.approx(5e-6 + 2e-6)

    def test_logp_multiple_fragments(self):
        model = LogPCostModel(L=5e-6, o=1e-6, g=2e-6, fragment_size=1024)
        assert model.time(4096) == pytest.approx(5e-6 + 2e-6 + 3 * 2e-6)

    def test_logp_rejects_negative_parameters(self):
        with pytest.raises(ModelError):
            LogPCostModel(L=-1, o=0, g=0)

    def test_loggp_linear_in_size(self):
        model = LogGPCostModel(L=5e-6, o=1e-6, g=2e-6, G=1e-8)
        t1 = model.time(1 * MB)
        t2 = model.time(2 * MB)
        assert t2 - t1 == pytest.approx(1 * MB * 1e-8, rel=1e-6)

    def test_loggp_zero_size_costs_latency_and_overhead(self):
        model = LogGPCostModel(L=5e-6, o=1e-6, g=2e-6, G=1e-8)
        assert model.time(0) == pytest.approx(5e-6 + 2e-6)

    def test_loggp_to_linear_round_trip(self):
        cost = LinearCostModel(latency=1e-5, bandwidth=100 * MB)
        loggp = LogGPCostModel.from_linear(cost)
        back = loggp.to_linear()
        assert back.bandwidth == pytest.approx(cost.bandwidth)
        assert back.latency == pytest.approx(cost.latency, rel=1e-6)

    def test_loggp_to_linear_requires_nonzero_G(self):
        with pytest.raises(ModelError):
            LogGPCostModel(L=0, o=0, g=0, G=0).to_linear()

    def test_adapter_predicts_no_contention(self):
        graph = outgoing_conflict_scheme(4)
        adapter = LogGPContentionAdapter(LogGPCostModel(L=5e-6, o=1e-6, g=2e-6, G=1e-8))
        assert set(adapter.penalties(graph).values()) == {1.0}
        times = adapter.predict_times_loggp(graph)
        assert all(t > 0 for t in times.values())
