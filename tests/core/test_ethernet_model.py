"""Tests of the Gigabit Ethernet model (§V.A) against the paper's numbers."""

from __future__ import annotations

import pytest

from repro.core import EthernetParameters, GigabitEthernetModel, LinearCostModel
from repro.core.graph import CommunicationGraph
from repro.exceptions import ModelError
from repro.scheme import figure2_schemes, figure4_scheme, outgoing_conflict_scheme
from repro.units import MB


class TestParameters:
    def test_paper_values(self):
        params = EthernetParameters.paper()
        assert params.beta == pytest.approx(0.75)
        assert params.gamma_o == pytest.approx(0.115)
        assert params.gamma_i == pytest.approx(0.036)

    def test_invalid_beta(self):
        with pytest.raises(ModelError):
            EthernetParameters(beta=0.0)

    def test_invalid_gamma(self):
        with pytest.raises(ModelError):
            EthernetParameters(gamma_o=1.5)
        with pytest.raises(ModelError):
            EthernetParameters(gamma_i=-0.1)


class TestSimpleConflicts:
    def test_single_communication_penalty_is_one(self, ethernet_model):
        graph = CommunicationGraph.from_edges([(0, 1)])
        assert ethernet_model.penalties(graph) == {"a": 1.0}

    @pytest.mark.parametrize("fanout,expected", [(2, 1.5), (3, 2.25), (4, 3.0)])
    def test_outgoing_ladder_scales_with_beta(self, ethernet_model, fanout, expected):
        graph = outgoing_conflict_scheme(fanout)
        penalties = ethernet_model.penalties(graph)
        assert all(p == pytest.approx(expected) for p in penalties.values())

    @pytest.mark.parametrize("fanin,expected", [(2, 1.5), (3, 2.25)])
    def test_incoming_ladder_symmetric(self, ethernet_model, fanin, expected):
        edges = [(i + 1, 0) for i in range(fanin)]
        graph = CommunicationGraph.from_edges(edges)
        penalties = ethernet_model.penalties(graph)
        assert all(p == pytest.approx(expected) for p in penalties.values())

    def test_income_outgo_conflict_leaves_penalties_at_one_for_the_reverse_flow(self, ethernet_model):
        """Figure 2 scheme 4: the incoming communication d is barely penalised."""
        graph = figure2_schemes()["S4"]
        penalties = ethernet_model.penalties(graph)
        assert penalties["d"] == pytest.approx(1.0)
        assert penalties["a"] == pytest.approx(2.25)

    def test_penalty_never_below_one(self, ethernet_model):
        graph = CommunicationGraph.from_edges([(0, 1), (2, 3), (4, 5)])
        assert all(p >= 1.0 for p in ethernet_model.penalties(graph).values())


class TestFigure2Agreement:
    """The model reproduces the Gigabit Ethernet column of Figure 2 for the
    outgoing-conflict schemes it was designed for (S1-S4)."""

    @pytest.mark.parametrize("scheme,comm,paper_value,tolerance", [
        ("S1", "a", 1.0, 0.01),
        ("S2", "a", 1.5, 0.01),
        ("S2", "b", 1.5, 0.01),
        ("S3", "a", 2.25, 0.01),
        ("S4", "a", 2.15, 0.11),   # paper measured 2.15, model predicts 2.25
        ("S4", "d", 1.15, 0.16),   # paper measured 1.15, model predicts 1.0
    ])
    def test_against_measured_penalties(self, ethernet_model, scheme, comm, paper_value, tolerance):
        graph = figure2_schemes()[scheme]
        assert ethernet_model.penalties(graph)[comm] == pytest.approx(paper_value, abs=tolerance)


class TestFigure4Scheme:
    """Structural and quantitative checks on the γ-verification scheme."""

    def test_degrees_match_the_derivation(self, fig4):
        # node 0 sends 3 communications; the destination of f receives 3
        assert fig4.delta_o("a") == 3
        assert fig4.delta_i("f") == 3
        assert fig4.delta_o("f") == 1

    def test_a_and_b_are_not_strongly_slowed(self, fig4):
        assert not fig4.is_strongly_slowed_outgoing("a")
        assert not fig4.is_strongly_slowed_outgoing("b")
        assert fig4.is_strongly_slowed_outgoing("c")

    def test_gamma_formulas_recover_the_predicted_times(self, ethernet_model, fig4):
        """p(a) = 3β(1-γo) and p(f) = 3β(1-γi), the relations used to estimate γ."""
        params = ethernet_model.parameters
        penalties = ethernet_model.penalties(fig4)
        assert penalties["a"] == pytest.approx(3 * params.beta * (1 - params.gamma_o))
        assert penalties["f"] == pytest.approx(3 * params.beta * (1 - params.gamma_i))

    def test_predicted_times_have_the_papers_ordering(self, ethernet_model, fig4):
        """Figure 4 ordering: d < a = b < e = f <= c."""
        cost = LinearCostModel(latency=45e-6, bandwidth=93.75e6)
        times = ethernet_model.predict_times(fig4, cost)
        assert times["d"] < times["a"]
        assert times["a"] == pytest.approx(times["b"])
        assert times["e"] == pytest.approx(times["f"])
        assert times["c"] >= times["e"]

    def test_details_expose_both_branches(self, ethernet_model, fig4):
        details = ethernet_model.details(fig4)
        assert details["c"]["in_cmo"] == 1.0
        assert details["a"]["in_cmo"] == 0.0
        assert details["f"]["p_o"] == pytest.approx(1.0)
        for name in fig4.names:
            assert details[name]["penalty"] == pytest.approx(
                max(1.0, details[name]["p_o"], details[name]["p_i"])
            )


class TestEdgeCases:
    def test_intra_node_communication_has_unit_penalty(self, ethernet_model):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, name="local")
        graph.add_edge(0, 1, name="x")
        graph.add_edge(0, 2, name="y")
        penalties = ethernet_model.penalties(graph)
        assert penalties["local"] == 1.0
        assert penalties["x"] == pytest.approx(1.5)

    def test_predict_returns_times_with_cost_model(self, ethernet_model):
        graph = outgoing_conflict_scheme(2, size=10 * MB)
        cost = LinearCostModel(latency=0.0, bandwidth=100 * MB)
        prediction = ethernet_model.predict(graph, cost)
        assert prediction.times["a"] == pytest.approx(1.5 * 0.1)
        assert prediction.mean_penalty == pytest.approx(1.5)

    def test_prediction_table_rendering(self, ethernet_model):
        graph = outgoing_conflict_scheme(2)
        text = ethernet_model.predict(graph).as_table()
        assert "penalty" in text and "a" in text

    def test_zero_gamma_collapses_branches(self):
        model = GigabitEthernetModel(EthernetParameters(beta=0.8, gamma_o=0.0, gamma_i=0.0))
        graph = figure4_scheme()
        details = model.details(graph)
        # with γ = 0 every communication from node 0 gets exactly Δo·β
        assert details["a"]["p_o"] == pytest.approx(3 * 0.8)
        assert details["c"]["p_o"] == pytest.approx(3 * 0.8)
