"""Tests for the communication graph data structure."""

from __future__ import annotations

import pytest

from repro.core.graph import Communication, CommunicationGraph, ConflictRule
from repro.exceptions import GraphError
from repro.units import MB


class TestCommunication:
    def test_basic_fields(self):
        comm = Communication("a", 0, 1, size=4 * MB)
        assert comm.src == 0
        assert comm.dst == 1
        assert comm.size == 4 * MB
        assert comm.endpoints == (0, 1)

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Communication("a", 0, 1, size=-1)

    def test_intra_node_detection(self):
        assert Communication("a", 3, 3).is_intra_node
        assert not Communication("a", 3, 4).is_intra_node

    def test_with_size_copies(self):
        comm = Communication("a", 0, 1, size=100)
        other = comm.with_size(200)
        assert other.size == 200
        assert comm.size == 100
        assert other.name == comm.name


class TestGraphConstruction:
    def test_from_edges_auto_names(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert graph.names == ("a", "b", "c")

    def test_from_edges_with_sizes(self):
        graph = CommunicationGraph.from_edges([(0, 1, 100), (1, 2, 200)])
        assert graph["a"].size == 100
        assert graph["b"].size == 200

    def test_from_edges_explicit_names(self):
        graph = CommunicationGraph.from_edges([(0, 1), (1, 2)], names=["x", "y"])
        assert set(graph.names) == {"x", "y"}

    def test_duplicate_name_rejected(self):
        graph = CommunicationGraph()
        graph.add_edge(0, 1, name="a")
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, name="a")

    def test_auto_name_beyond_alphabet(self):
        graph = CommunicationGraph()
        for i in range(30):
            graph.add_edge(i, i + 1)
        assert len(set(graph.names)) == 30

    def test_frozen_graph_rejects_additions(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        graph.freeze()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2)

    def test_unknown_communication_lookup(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph["zzz"]

    def test_subgraph(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        sub = graph.subgraph(["a", "c"])
        assert set(sub.names) == {"a", "c"}
        assert len(sub) == 2

    def test_subgraph_unknown_name(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph.subgraph(["nope"])

    def test_with_sizes(self):
        graph = CommunicationGraph.from_edges([(0, 1, 100), (1, 2, 200)])
        resized = graph.with_sizes(4 * MB)
        assert all(c.size == 4 * MB for c in resized)
        assert graph["a"].size == 100  # original untouched

    def test_nodes_property(self):
        graph = CommunicationGraph.from_edges([(0, 1), (5, 0)])
        assert set(graph.nodes) == {0, 1, 5}

    def test_equality_and_hash(self):
        g1 = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        g2 = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        g3 = CommunicationGraph.from_edges([(0, 1), (0, 3)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3


class TestDegrees:
    def test_out_and_in_degree(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (0, 3), (4, 0)])
        assert graph.out_degree(0) == 3
        assert graph.in_degree(0) == 1
        assert graph.in_degree(1) == 1
        assert graph.out_degree(4) == 1

    def test_delta_per_communication(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (3, 2)])
        assert graph.delta_o("a") == 2
        assert graph.delta_i("a") == 1
        assert graph.delta_i("b") == 2
        assert graph.delta_o("c") == 1

    def test_intra_node_does_not_count_in_degrees(self):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, name="local")
        graph.add_edge(0, 1, name="remote")
        assert graph.out_degree(0) == 1
        assert graph.in_degree(0) == 0

    def test_degree_of_unknown_communication(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        foreign = Communication("zz", 7, 8)
        with pytest.raises(GraphError):
            graph.delta_o(foreign)


class TestStronglySlowedSets:
    def test_definition_1_outgoing(self):
        # node 0 sends to nodes with in-degrees 1, 2, 3; only the last is strongly slowed
        graph = CommunicationGraph.from_edges(
            [(0, 1), (0, 2), (0, 3), (4, 2), (5, 3), (6, 3)],
            names=["a", "b", "c", "x", "y", "z"],
        )
        assert not graph.is_strongly_slowed_outgoing("a")
        assert not graph.is_strongly_slowed_outgoing("b")
        assert graph.is_strongly_slowed_outgoing("c")
        assert [c.name for c in graph.strongly_slowed_outgoing("a")] == ["c"]

    def test_definition_1_incoming(self):
        # node 3 receives from sources with out-degrees 1 and 2
        graph = CommunicationGraph.from_edges(
            [(0, 3), (0, 1), (2, 3)], names=["a", "b", "c"]
        )
        assert graph.is_strongly_slowed_incoming("a")      # source out-degree 2 (max)
        assert not graph.is_strongly_slowed_incoming("c")  # source out-degree 1

    def test_ties_put_everyone_in_the_set(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        for name in graph.names:
            assert graph.is_strongly_slowed_outgoing(name)
        assert len(graph.strongly_slowed_outgoing("a")) == 3


class TestConflictGraph:
    def test_endpoint_rule_shared_source(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (3, 4)])
        adjacency = graph.conflict_adjacency(ConflictRule.ENDPOINT)
        assert adjacency["a"] == frozenset({"b"})
        assert adjacency["c"] == frozenset()

    def test_endpoint_rule_shared_destination(self):
        graph = CommunicationGraph.from_edges([(0, 2), (1, 2)])
        adjacency = graph.conflict_adjacency()
        assert adjacency["a"] == frozenset({"b"})

    def test_income_outgo_does_not_conflict_under_endpoint_rule(self):
        graph = CommunicationGraph.from_edges([(0, 1), (2, 0)])
        adjacency = graph.conflict_adjacency(ConflictRule.ENDPOINT)
        assert adjacency["a"] == frozenset()
        assert adjacency["b"] == frozenset()

    def test_any_node_rule_is_stricter(self):
        graph = CommunicationGraph.from_edges([(0, 1), (2, 0)])
        adjacency = graph.conflict_adjacency(ConflictRule.ANY_NODE)
        assert adjacency["a"] == frozenset({"b"})

    def test_unknown_rule_rejected(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph.conflict_adjacency("bogus")

    def test_conflict_components(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6), (7, 6)])
        components = graph.conflict_components()
        assert sorted(map(sorted, components)) == [["a", "b"], ["c", "d"]]

    def test_intra_node_excluded_from_conflicts(self):
        graph = CommunicationGraph()
        graph.add_edge(0, 0, name="local")
        graph.add_edge(0, 1, name="remote")
        adjacency = graph.conflict_adjacency()
        assert "local" not in adjacency
        assert adjacency["remote"] == frozenset()


class TestConversions:
    def test_networkx_round_trip(self):
        graph = CommunicationGraph.from_edges([(0, 1, 100), (0, 2, 200), (3, 0, 300)],
                                              name="demo")
        back = CommunicationGraph.from_networkx(graph.to_networkx())
        assert back.to_edge_list() == graph.to_edge_list()
        assert set(back.names) == set(graph.names)

    def test_to_edge_list_order(self):
        graph = CommunicationGraph.from_edges([(3, 0), (0, 1)])
        assert graph.to_edge_list()[0][:2] == (3, 0)

    def test_describe_mentions_every_communication(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2)], name="demo")
        text = graph.describe()
        assert "demo" in text
        assert "a:" in text and "b:" in text


class TestRemoveAndDeltaAPI:
    def test_remove_returns_and_forgets(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        removed = graph.remove("a")
        assert removed.endpoints == (0, 1)
        assert "a" not in graph
        assert graph.names == ("b",)

    def test_remove_updates_degrees(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (3, 1)])
        assert graph.out_degree(0) == 2
        assert graph.in_degree(1) == 2
        graph.remove("a")
        assert graph.out_degree(0) == 1
        assert graph.in_degree(1) == 1
        graph.remove("c")
        assert graph.in_degree(1) == 0

    def test_remove_unknown_rejected(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph.remove("zzz")

    def test_remove_on_frozen_rejected(self):
        graph = CommunicationGraph.from_edges([(0, 1)]).freeze()
        with pytest.raises(GraphError):
            graph.remove("a")

    def test_remove_then_add_round_trips_conflicts(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6)])
        comm = graph.remove("b")
        assert graph.conflict_adjacency()["a"] == frozenset()
        graph.add(comm)
        assert graph.conflict_adjacency()["a"] == frozenset({"b"})

    def test_remove_intra_node(self):
        graph = CommunicationGraph()
        graph.add_edge(2, 2, name="local")
        graph.remove("local")
        assert len(graph) == 0


class TestConflictComponentsUnderBothRules:
    # scheme: a income/outgo pair 0->1, 1->2 is split by ENDPOINT
    # (no shared source, no shared destination) but joined by ANY_NODE.
    def test_endpoint_rule_splits_income_outgo_chain(self):
        graph = CommunicationGraph.from_edges([(0, 1), (1, 2)])
        components = graph.conflict_components(ConflictRule.ENDPOINT)
        assert sorted(map(sorted, components)) == [["a"], ["b"]]

    def test_any_node_rule_joins_income_outgo_chain(self):
        graph = CommunicationGraph.from_edges([(0, 1), (1, 2)])
        components = graph.conflict_components(ConflictRule.ANY_NODE)
        assert sorted(map(sorted, components)) == [["a", "b"]]

    def test_shared_source_joined_under_both_rules(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6)])
        for rule in ConflictRule.ALL:
            components = graph.conflict_components(rule)
            assert sorted(map(sorted, components)) == [["a", "b"], ["c"]]

    def test_shared_destination_joined_under_both_rules(self):
        graph = CommunicationGraph.from_edges([(1, 0), (2, 0), (5, 6)])
        for rule in ConflictRule.ALL:
            components = graph.conflict_components(rule)
            assert sorted(map(sorted, components)) == [["a", "b"], ["c"]]

    def test_any_node_components_coarsen_endpoint_components(self):
        graph = CommunicationGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (5, 6), (7, 6), (8, 9)]
        )
        endpoint = graph.conflict_components(ConflictRule.ENDPOINT)
        any_node = graph.conflict_components(ConflictRule.ANY_NODE)
        for fine in endpoint:
            assert any(set(fine) <= set(coarse) for coarse in any_node)

    def test_intra_node_never_in_components(self):
        graph = CommunicationGraph.from_edges([(0, 0), (0, 1)])
        for rule in ConflictRule.ALL:
            members = {n for comp in graph.conflict_components(rule) for n in comp}
            assert members == {"b"}

    def test_conflict_resources(self):
        comm = Communication("a", 3, 4)
        assert CommunicationGraph.conflict_resources(comm, ConflictRule.ENDPOINT) == (
            ("src", 3), ("dst", 4))
        assert CommunicationGraph.conflict_resources(comm, ConflictRule.ANY_NODE) == (
            ("node", 3), ("node", 4))
        with pytest.raises(GraphError):
            CommunicationGraph.conflict_resources(comm, "bogus")


class TestStructuralKey:
    def test_order_independent(self):
        g1 = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        g2 = CommunicationGraph.from_edges([(0, 2), (0, 1)])
        assert g1.structural_key() == g2.structural_key()

    def test_node_relabelling_invariant_when_order_preserved(self):
        g1 = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        g2 = CommunicationGraph.from_edges([(10, 21), (10, 32)])
        assert g1.structural_key() == g2.structural_key()

    def test_name_independent(self):
        g1 = CommunicationGraph.from_edges([(0, 1), (2, 1)], names=["x", "y"])
        g2 = CommunicationGraph.from_edges([(2, 1), (0, 1)], names=["p", "q"])
        assert g1.structural_key() == g2.structural_key()

    def test_distinguishes_structure(self):
        fan_out = CommunicationGraph.from_edges([(0, 1), (0, 2)])
        fan_in = CommunicationGraph.from_edges([(1, 0), (2, 0)])
        assert fan_out.structural_key() != fan_in.structural_key()

    def test_multiplicity_preserved(self):
        single = CommunicationGraph.from_edges([(0, 1)])
        double = CommunicationGraph.from_edges([(0, 1), (0, 1)])
        assert single.structural_key() != double.structural_key()

    def test_subset_selection(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6)])
        assert graph.structural_key(["c"]) == ((0, 1),)

    def test_sizes_optional(self):
        g1 = CommunicationGraph.from_edges([(0, 1, 100)])
        g2 = CommunicationGraph.from_edges([(0, 1, 200)])
        assert g1.structural_key() == g2.structural_key()
        assert g1.structural_key(include_sizes=True) != g2.structural_key(include_sizes=True)

    def test_unknown_name_rejected(self):
        graph = CommunicationGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            graph.structural_key(["nope"])
