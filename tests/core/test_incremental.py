"""Tests for the incremental contention engine (repro.core.incremental)."""

from __future__ import annotations

import pytest

from repro.core import (
    ContentionModel,
    FairShareModel,
    GigabitEthernetModel,
    IncrementalPenaltyEngine,
    InfinibandModel,
    MyrinetModel,
    PenaltyCache,
)
from repro.core.graph import Communication, CommunicationGraph, ConflictRule
from repro.exceptions import GraphError


def comm(name, src, dst, size=1000):
    return Communication(name, src, dst, size=size)


class TestComponentPenaltiesEntryPoint:
    def test_component_scoped_evaluation_matches_full(self):
        graph = CommunicationGraph.from_edges([(0, 1), (0, 2), (5, 6), (7, 6)])
        model = GigabitEthernetModel()
        full = model.penalties(graph)
        for component in graph.conflict_components(model.component_rule):
            scoped = model.component_penalties(graph, component)
            assert scoped == {n: full[n] for n in component}

    def test_fallback_when_no_locality_promise(self):
        class OpaqueModel(ContentionModel):
            name = "opaque"

            def penalties(self, graph):
                return {c.name: float(len(graph)) for c in graph}

        graph = CommunicationGraph.from_edges([(0, 1), (5, 6)])
        model = OpaqueModel()
        assert model.component_rule is None
        # whole-graph evaluation restricted to the requested names
        assert model.component_penalties(graph, ["a"]) == {"a": 2.0}

    def test_shipped_models_declare_locality(self):
        assert GigabitEthernetModel().component_rule == ConflictRule.ENDPOINT
        assert MyrinetModel().component_rule == ConflictRule.ENDPOINT
        assert MyrinetModel(conflict_rule=ConflictRule.ANY_NODE).component_rule == ConflictRule.ANY_NODE
        assert InfinibandModel().component_rule == ConflictRule.ANY_NODE
        assert FairShareModel().component_rule == ConflictRule.ENDPOINT


class TestIncrementalPenaltyEngine:
    def test_arrival_prices_only_the_new_component(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 5, 6))
        engine.penalties()
        evaluated_before = engine.stats.comm_evaluations
        # a third, disjoint flow must not re-price the existing components
        engine.add(comm("c", 8, 9))
        engine.penalties()
        assert engine.stats.comm_evaluations - evaluated_before <= 1

    def test_penalties_match_full_recompute(self):
        model = GigabitEthernetModel()
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        comms = [comm("a", 0, 1), comm("b", 0, 2), comm("c", 2, 1), comm("d", 5, 6)]
        for c in comms:
            engine.add(c)
        assert engine.penalties() == model.penalties(CommunicationGraph(comms))

    def test_departure_splits_component(self):
        engine = IncrementalPenaltyEngine(FairShareModel())
        # b bridges a and c: a(0->1), b(0->2)... use shared endpoints
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 0, 2))
        engine.add(comm("c", 3, 2))
        assert engine.components == [("a", "b", "c")]
        engine.remove("b")
        assert engine.components == [("a",), ("c",)]
        assert engine.penalties() == {"a": 1.0, "c": 1.0}

    def test_arrival_merges_components(self):
        engine = IncrementalPenaltyEngine(FairShareModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 2, 3))
        assert engine.components == [("a",), ("b",)]
        engine.add(comm("c", 0, 3))
        assert engine.components == [("a", "b", "c")]

    def test_intra_node_flows_never_enter_components(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("local", 4, 4))
        engine.add(comm("remote", 4, 5))
        assert engine.components == [("remote",)]
        pens = engine.penalties()
        assert pens["local"] == 1.0
        engine.remove("local")
        assert engine.penalties() == {"remote": 1.0}

    def test_cache_hit_skips_model_evaluation(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 0, 2))
        first = engine.penalties()
        engine.remove("a")
        engine.remove("b")
        engine.penalties()
        misses_before = engine.stats.cache_misses
        # the same situation on different hosts with different names
        engine.add(comm("x", 7, 8))
        engine.add(comm("y", 7, 9))
        second = engine.penalties()
        assert engine.stats.cache_misses == misses_before
        assert engine.stats.cache_hits >= 1
        assert sorted(second.values()) == sorted(first.values())

    def test_shared_cache_across_engines(self):
        cache = PenaltyCache()
        first = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        first.add(comm("a", 0, 1))
        first.add(comm("b", 0, 2))
        first.penalties()
        second = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        second.add(comm("p", 3, 4))
        second.add(comm("q", 3, 5))
        second.penalties()
        assert second.stats.cache_hits == 1
        assert second.stats.comm_evaluations == 0

    def test_update_diffs_the_active_set(self):
        engine = IncrementalPenaltyEngine(FairShareModel())
        engine.update([comm("a", 0, 1), comm("b", 0, 2)])
        assert set(engine.graph.names) == {"a", "b"}
        pens = engine.update([comm("b", 0, 2), comm("c", 5, 6)])
        assert set(pens) == {"b", "c"}
        assert set(engine.graph.names) == {"b", "c"}

    def test_update_replaces_renamed_endpoints(self):
        engine = IncrementalPenaltyEngine(FairShareModel())
        engine.update([comm("a", 0, 1)])
        pens = engine.update([comm("a", 2, 3)])
        assert engine.graph["a"].endpoints == (2, 3)
        assert pens == {"a": 1.0}

    def test_reset_keeps_cache(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 0, 2))
        engine.penalties()
        engine.reset()
        assert len(engine.graph) == 0
        engine.add(comm("x", 5, 6))
        engine.add(comm("y", 5, 7))
        engine.penalties()
        assert engine.stats.cache_hits >= 1

    def test_myrinet_incremental_matches_analysis(self):
        model = MyrinetModel()
        engine = IncrementalPenaltyEngine(MyrinetModel())
        comms = [comm("a", 0, 1), comm("b", 0, 2), comm("c", 3, 1), comm("d", 3, 2)]
        for c in comms:
            engine.add(c)
        assert engine.penalties() == model.penalties(CommunicationGraph(comms))
        engine.remove("c")
        remaining = [c for c in comms if c.name != "c"]
        assert engine.penalties() == model.penalties(CommunicationGraph(remaining))

    def test_stats_snapshot_keys(self):
        engine = IncrementalPenaltyEngine(FairShareModel())
        engine.add(comm("a", 0, 1))
        engine.penalties()
        snap = engine.stats.snapshot()
        assert snap["events"] == 1
        assert set(snap) == {
            "events", "component_evaluations", "comm_evaluations",
            "cache_hits", "cache_misses",
        }


class TestPenaltyCache:
    def test_lru_eviction(self):
        cache = PenaltyCache(max_entries=2)
        cache.store("k1", {"a": (0, 1)}, {"a": 1.0})
        cache.store("k2", {"a": (0, 1)}, {"a": 2.0})
        cache.get("k1")  # refresh k1
        cache.store("k3", {"a": (0, 1)}, {"a": 3.0})
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert len(cache) == 2

    def test_asymmetric_component_not_cached(self):
        cache = PenaltyCache()
        # two same-endpoint communications with different penalties: unsound
        cache.store(
            "k",
            {"a": (0, 1), "b": (0, 1)},
            {"a": 1.0, "b": 2.0},
        )
        assert cache.get("k") is None

    def test_zero_capacity_disables(self):
        cache = PenaltyCache(max_entries=0)
        cache.store("k", {"a": (0, 1)}, {"a": 1.0})
        assert cache.get("k") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(GraphError):
            PenaltyCache(max_entries=-1)


class TestCacheModelNamespacing:
    def test_shared_cache_never_leaks_between_models(self):
        """Regression: a cache shared across providers wrapping different
        models must not serve one model's penalties to the other."""
        cache = PenaltyCache()
        ethernet = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        infiniband = IncrementalPenaltyEngine(InfinibandModel(), cache=cache)
        comms = [comm("a", 0, 1), comm("b", 0, 2)]
        for c in comms:
            ethernet.add(c)
            infiniband.add(c)
        expected = InfinibandModel().penalties(CommunicationGraph(comms))
        ethernet.penalties()
        assert infiniband.penalties() == expected
        assert infiniband.stats.cache_hits == 0

    def test_shared_cache_never_leaks_between_parameterizations(self):
        from repro.core import EthernetParameters
        cache = PenaltyCache()
        paper = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        custom_model = GigabitEthernetModel(EthernetParameters(beta=0.5))
        custom = IncrementalPenaltyEngine(
            GigabitEthernetModel(EthernetParameters(beta=0.5)), cache=cache)
        comms = [comm("a", 0, 1), comm("b", 0, 2)]
        for c in comms:
            paper.add(c)
            custom.add(c)
        paper.penalties()
        assert custom.penalties() == custom_model.penalties(CommunicationGraph(comms))

    def test_same_model_still_shares(self):
        cache = PenaltyCache()
        first = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        second = IncrementalPenaltyEngine(GigabitEthernetModel(), cache=cache)
        first.add(comm("a", 0, 1))
        first.add(comm("b", 0, 2))
        first.penalties()
        second.add(comm("x", 5, 6))
        second.add(comm("y", 5, 7))
        second.penalties()
        assert second.stats.cache_hits == 1


class TestMyrinetDecomposeContract:
    def test_no_decompose_means_no_locality_promise(self):
        assert MyrinetModel(decompose=False).component_rule is None
        assert MyrinetModel(decompose=True).component_rule == ConflictRule.ENDPOINT

    def test_component_cap_error_identical_between_modes(self):
        """Regression: with decompose=False the incremental engine must hit
        the same max_component_size cap as a full recomputation instead of
        silently decomposing the graph."""
        from repro.exceptions import ModelError

        comms = [comm(f"t{i}", 2 * i, 2 * i + 1) for i in range(5)]
        full_model = MyrinetModel(decompose=False, max_component_size=3)
        with pytest.raises(ModelError):
            full_model.penalties(CommunicationGraph(comms))
        engine = IncrementalPenaltyEngine(MyrinetModel(decompose=False, max_component_size=3))
        for c in comms:
            engine.add(c)
        with pytest.raises(ModelError):
            engine.penalties()


class TestCacheTelemetry:
    def test_hit_miss_and_eviction_counters(self):
        cache = PenaltyCache(max_entries=2)
        assert cache.get("a") is None            # miss
        cache.put("a", {(0, 1): 1.5})
        assert cache.get("a") == {(0, 1): 1.5}   # hit
        assert cache.get("a") is not None        # hit again
        cache.put("b", {(0, 1): 2.0})
        cache.put("c", {(0, 1): 3.0})            # evicts "a" (2 earned hits)
        summary = cache.stats()
        assert summary["lookups"] == 3
        assert summary["hits"] == 2
        assert summary["misses"] == 1
        assert summary["hit_rate"] == pytest.approx(2 / 3)
        assert summary["evictions"] == 1
        assert summary["evicted_entry_hits"] == 2
        assert summary["entries"] == 2
        assert summary["entries_never_hit"] == 2  # "b" and "c" never hit

    def test_entry_hits_follow_lru_order(self):
        cache = PenaltyCache()
        cache.put("a", {(0, 1): 1.0})
        cache.put("b", {(0, 1): 2.0})
        cache.get("a")                            # refreshes "a" to MRU
        assert cache.entry_hits() == [("b", 0), ("a", 1)]
        assert cache.stats()["max_entry_hits"] == 1
        assert cache.stats()["live_entry_hits"] == 1

    def test_clear_resets_entry_hits(self):
        cache = PenaltyCache()
        cache.put("a", {(0, 1): 1.0})
        cache.get("a")
        cache.clear()
        assert cache.entry_hits() == []
        # traffic totals survive a clear (they describe the cache's lifetime)
        assert cache.stats()["hits"] == 1


class TestRefreshDeltaInterface:
    def test_refresh_returns_only_repriced_communications(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 0, 2))
        engine.add(comm("c", 5, 6))
        first = engine.refresh()
        assert set(first) == {"a", "b", "c"}
        # a new flow conflicting only with c's component re-prices just it
        engine.add(comm("d", 5, 7))
        second = engine.refresh()
        assert set(second) == {"c", "d"}
        assert engine.penalties()["a"] == first["a"]

    def test_refresh_reports_intra_node_arrivals(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("intra", 3, 3))
        assert engine.refresh() == {"intra": 1.0}
        assert engine.refresh() == {}

    def test_refresh_reports_departure_fallout(self):
        engine = IncrementalPenaltyEngine(GigabitEthernetModel())
        engine.add(comm("a", 0, 1))
        engine.add(comm("b", 0, 2))
        engine.refresh()
        engine.remove("a")
        fallout = engine.refresh()
        assert set(fallout) == {"b"}          # b's component was re-priced
        assert fallout["b"] == 1.0            # and is now conflict-free
