"""Streaming trace reader: edge cases and streaming == batch equivalence."""

from __future__ import annotations

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import StreamingTimeline, timeline_bins, timeline_summary
from repro.exceptions import TraceError
from repro.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    JsonlTraceSink,
    StreamingTraceReader,
    TraceRecord,
    read_trace_log,
)

HEADER = json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION}) + "\n"


def record_line(index: int, kind: str = "calendar.complete") -> str:
    return json.dumps({"t": 0.1 * index, "kind": kind, "subject": index}) + "\n"


class TestEdgeCases:
    def test_missing_file_is_nothing_yet(self, tmp_path):
        reader = StreamingTraceReader(tmp_path / "not-written-yet.jsonl")
        assert reader.poll() == []
        assert not reader.header_seen

    def test_empty_file_is_nothing_yet(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        reader = StreamingTraceReader(path)
        assert reader.poll() == []
        assert not reader.header_seen

    def test_header_only_file_is_a_valid_zero_event_trace(self, tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text(HEADER)
        reader = StreamingTraceReader(path)
        assert reader.poll() == []
        assert reader.header_seen
        assert reader.header["version"] == TRACE_VERSION

    def test_partial_trailing_line_is_buffered_until_complete(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        line = record_line(0)
        path.write_text(HEADER + line[:10])  # record cut mid-JSON
        reader = StreamingTraceReader(path)
        assert reader.poll() == []  # incomplete tail: not an error, not a record
        with path.open("a") as handle:
            handle.write(line[10:])
        (record,) = reader.poll()
        assert record == TraceRecord(0.0, "calendar.complete", 0)

    def test_record_written_across_many_polls(self, tmp_path):
        """Appending byte by byte: the record surfaces exactly once, when its
        newline lands."""
        path = tmp_path / "drip.jsonl"
        path.write_text(HEADER)
        reader = StreamingTraceReader(path)
        assert reader.poll() == []
        line = record_line(7, kind="calendar.activate").encode()
        for offset in range(len(line)):
            with path.open("ab") as handle:
                handle.write(line[offset:offset + 1])
            records = reader.poll()
            if offset < len(line) - 1:
                assert records == []
            else:
                assert [r.subject for r in records] == [7]
        assert reader.records_read == 1

    def test_header_split_across_polls(self, tmp_path):
        path = tmp_path / "split-header.jsonl"
        path.write_text(HEADER[:8])
        reader = StreamingTraceReader(path)
        assert reader.poll() == []
        assert not reader.header_seen
        with path.open("a") as handle:
            handle.write(HEADER[8:] + record_line(1))
        assert len(reader.poll()) == 1
        assert reader.header_seen

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "not-a-trace"}) + "\n")
        with pytest.raises(TraceError, match="header"):
            StreamingTraceReader(path).poll()

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"format": TRACE_FORMAT,
                                    "version": TRACE_VERSION + 1}) + "\n")
        with pytest.raises(TraceError, match="version"):
            StreamingTraceReader(path).poll()

    def test_malformed_complete_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(HEADER + record_line(0) + "{not json}\n")
        reader = StreamingTraceReader(path)
        with pytest.raises(TraceError, match="line 3"):
            reader.poll()

    def test_shrunk_file_raises(self, tmp_path):
        path = tmp_path / "shrink.jsonl"
        path.write_text(HEADER + record_line(0) + record_line(1))
        reader = StreamingTraceReader(path)
        assert len(reader.poll()) == 2
        path.write_text(HEADER)  # truncation/rotation mid-tail
        with pytest.raises(TraceError, match="shrank"):
            reader.poll()


class TestAgainstTheSink:
    def test_tailing_across_flush_every_boundaries(self, tmp_path):
        """A sink flushing every 2 records: polls between emits see exactly
        the flushed records, and close() surfaces the buffered remainder."""
        path = tmp_path / "flushed.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        reader = StreamingTraceReader(path)
        seen = []
        for index in range(5):
            sink.emit(TraceRecord(0.1 * index, "calendar.complete", index))
            seen.extend(reader.poll())
        # 5 emits, flushes after #2 and #4: one record still buffered
        assert [r.subject for r in seen] == [0, 1, 2, 3]
        sink.close()
        seen.extend(reader.poll())
        assert [r.subject for r in seen] == [0, 1, 2, 3, 4]
        assert seen == read_trace_log(path).records

    def test_streaming_a_finished_trace_equals_the_batch_read(self, tmp_path):
        path = tmp_path / "full.jsonl"
        with JsonlTraceSink(path) as sink:
            for index in range(20):
                sink.emit(TraceRecord(0.05 * index, "calendar.activate", index,
                                      {"src": 0, "dst": 1, "size": 1.0}))
        reader = StreamingTraceReader(path)
        assert reader.poll() == read_trace_log(path).records
        assert reader.poll() == []  # drained


KINDS = ["calendar.activate", "calendar.complete", "calendar.cancel",
         "calendar.flush", "calendar.retime", "inject.apply", "task.event",
         "step"]

trace_strategy = st.lists(
    st.tuples(st.floats(0.0, 10.0, allow_nan=False), st.sampled_from(KINDS)),
    max_size=40,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(events=trace_strategy, data=st.data())
def test_streaming_timeline_equals_batch_timeline(events, data):
    """Fed the same records in arbitrary batch splits, StreamingTimeline's
    summary and bins are identical to the batch functions' — the ISSUE's
    streaming-equals-batch acceptance property."""
    times = sorted(time for time, _ in events)
    records = [TraceRecord(time, kind, index)
               for index, (time, (_, kind)) in enumerate(zip(times, events))]
    timeline = StreamingTimeline()
    remaining = list(records)
    while remaining:
        cut = data.draw(st.integers(1, len(remaining)))
        timeline.feed(remaining[:cut])
        remaining = remaining[cut:]
    assert timeline.records == len(records)
    assert timeline.summary() == timeline_summary(records)
    for bins in (1, 3, 10):
        assert timeline.bins(bins) == timeline_bins(records, bins=bins)


def test_streaming_timeline_rejects_zero_bins():
    timeline = StreamingTimeline()
    timeline.feed([TraceRecord(0.0, "step", "engine", {"step": 0})])
    with pytest.raises(TraceError):
        timeline.bins(0)
