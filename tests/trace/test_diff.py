"""Trace diff: first-divergence localization, property-tested."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.trace import (
    JsonlTraceSink,
    TraceRecord,
    assert_traces_equal,
    diff_trace_files,
    format_trace_diff,
    trace_diff,
)

KINDS = ["calendar.activate", "calendar.complete", "calendar.flush",
         "task.event", "step", "inject.apply"]

record_strategy = st.builds(
    TraceRecord,
    time=st.floats(0.0, 100.0, allow_nan=False),
    kind=st.sampled_from(KINDS),
    subject=st.one_of(st.none(), st.integers(0, 9), st.text("ab", max_size=3)),
    data=st.dictionaries(st.sampled_from(["rate", "size", "step", "label"]),
                         st.integers(0, 1000), max_size=3),
)
trace_strategy = st.lists(record_strategy, min_size=1, max_size=30)


def perturb(record: TraceRecord, how: str) -> TraceRecord:
    """A record guaranteed to differ from ``record`` in one field."""
    if how == "time":
        return TraceRecord(record.time + 1.0, record.kind, record.subject,
                           dict(record.data))
    if how == "kind":
        kind = "calendar.cancel" if record.kind != "calendar.cancel" \
            else "calendar.retime"
        return TraceRecord(record.time, kind, record.subject,
                           dict(record.data))
    if how == "subject":
        return TraceRecord(record.time, record.kind, "perturbed",
                           dict(record.data))
    data = dict(record.data)
    data["rate"] = data.get("rate", 0) + 1
    return TraceRecord(record.time, record.kind, record.subject, data)


FIELD_OF = {"time": "t", "kind": "kind", "subject": "subject",
            "data": "data.rate"}


class TestDiffProperty:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=trace_strategy, data=st.data())
    def test_single_record_perturbation_is_located_exactly(self, trace, data):
        """The ISSUE's acceptance property: two traces differing only at
        record k diff to index k, and the report names record k."""
        k = data.draw(st.integers(0, len(trace) - 1))
        how = data.draw(st.sampled_from(["time", "kind", "subject", "data"]))
        other = list(trace)
        other[k] = perturb(trace[k], how)
        diff = trace_diff(trace, other)
        assert diff.index == k
        assert diff.reason == "record"
        assert not diff.identical
        assert diff.line == k + 2
        assert FIELD_OF[how] in diff.fields
        report = format_trace_diff(diff)
        assert f"first divergence at record {k} (line {k + 2})" in report
        # context is aligned: the shared prefix right before the divergence
        assert diff.common == tuple(trace[max(0, k - 3):k])
        with pytest.raises(AssertionError,
                           match=f"first divergence at record {k} "):
            assert_traces_equal(trace, other)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(trace=trace_strategy, extra=st.lists(record_strategy, min_size=1,
                                                max_size=5))
    def test_prefix_truncation_diverges_at_the_shorter_length(self, trace, extra):
        longer = trace + extra
        diff = trace_diff(trace, longer)
        assert diff.index == len(trace)
        assert diff.reason == "length"
        assert diff.counts == (len(trace), len(longer))
        assert diff.left is None and diff.right == extra[0]
        assert "<end of trace>" in format_trace_diff(diff)


class TestDiffBasics:
    def test_identical_traces(self):
        trace = [TraceRecord(0.1 * i, "step", "engine", {"step": i})
                 for i in range(4)]
        diff = trace_diff(trace, list(trace))
        assert diff.identical
        assert diff.index is None and diff.line is None
        assert format_trace_diff(diff) == "traces identical: 4 records"
        assert_traces_equal(trace, list(trace))  # does not raise

    def test_empty_traces_are_identical(self):
        assert trace_diff([], []).identical

    def test_report_names_both_sides_and_fields(self):
        a = [TraceRecord(0.0, "step", "engine", {"step": 0}),
             TraceRecord(1.0, "step", "engine", {"step": 1})]
        b = [a[0], TraceRecord(2.0, "step", "engine", {"step": 9})]
        report = format_trace_diff(trace_diff(a, b), label_a="left.jsonl",
                                   label_b="right.jsonl")
        assert "left.jsonl (2 records)" in report
        assert "right.jsonl (2 records)" in report
        assert "differing fields: t, data.step" in report
        assert "a-> record 1" in report and "b-> record 1" in report

    def test_diff_trace_files_reports_the_perturbed_record(self, tmp_path):
        records = [TraceRecord(0.05 * i, "calendar.complete", i)
                   for i in range(10)]
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with JsonlTraceSink(path_a) as sink:
            for record in records:
                sink.emit(record)
        records[5] = TraceRecord(records[5].time + 123.0, "calendar.complete", 5)
        with JsonlTraceSink(path_b) as sink:
            for record in records:
                sink.emit(record)
        diff = diff_trace_files(path_a, path_b)
        assert diff.index == 5
        assert diff.line == 7  # header + 5 shared records precede it
        assert diff.fields == ("t",)
        assert diff_trace_files(path_a, path_a).identical
