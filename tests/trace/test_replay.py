"""TraceReplayInjector: recorded interference replayed bit-exactly."""

from __future__ import annotations

import pytest

from repro.cluster import custom_cluster
from repro.exceptions import TraceError
from repro.network.allocator import EmulatorRateProvider
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.network.topology import CrossbarTopology
from repro.simulator import (
    BackgroundTrafficInjector,
    EngineConfig,
    LinkDegradationInjector,
    NodeSlowdownInjector,
    Simulator,
)
from repro.trace import MemoryTraceSink, TraceRecord, TraceReplayInjector, replay_events
from repro.units import MB
from repro.workloads import broadcast_application, ring_allgather
from repro.simulator import Application


def cluster(hosts=4):
    return custom_cluster(num_nodes=hosts, cores_per_node=2,
                          technology="ethernet")


def make_application(num_tasks=4):
    app = Application(num_tasks=num_tasks, name="replay-app")
    for rank in range(num_tasks):
        app.add_compute(rank, duration=0.002 * (rank + 1))
    return ring_allgather(app, 512_000)


def run_engine(app, injectors, trace=None, mode="predictive", hosts=4):
    config = EngineConfig(injectors=injectors, trace=trace)
    if mode == "emulated":
        sim = Simulator.emulated(cluster(hosts), config=config)
    else:
        sim = Simulator.predictive(cluster(hosts), config=config)
    report = sim.run(app, placement="RRP", seed=0)
    return report, sim.last_engine_stats


class TestReplayBitExact:
    @pytest.mark.parametrize("mode", ["predictive", "emulated"])
    def test_background_schedule_replays_bit_exactly(self, mode):
        """The acceptance bar: a loaded run's own trace reproduces it."""
        app = make_application()
        original = BackgroundTrafficInjector(rate=250.0, size=2 * MB, seed=3,
                                             max_flows=8)
        sink = MemoryTraceSink()
        loaded_report, loaded_stats = run_engine(app, (original,), trace=sink,
                                                 mode=mode)
        assert loaded_stats["background_flows"] > 0

        replay = TraceReplayInjector(sink.records)
        assert len(replay.events) == loaded_stats["background_flows"]
        replay_report, replay_stats = run_engine(app, (replay,), mode=mode)

        # bit-exact: identical per-rank event streams and completion times
        assert replay_report.records == loaded_report.records
        assert replay_report.finish_time_per_task == loaded_report.finish_time_per_task
        assert replay_stats["background_flows"] == loaded_stats["background_flows"]

    def test_window_injectors_replay_bit_exactly(self):
        app = make_application()
        injectors = (
            LinkDegradationInjector(factor=0.5, start=0.0, until=0.02,
                                    hosts=[0, 1]),
            NodeSlowdownInjector(factor=0.5, start=0.0, until=0.05),
        )
        sink = MemoryTraceSink()
        loaded_report, _ = run_engine(app, injectors, trace=sink)

        replay = TraceReplayInjector(sink.records)
        kinds = [record.kind for record in replay.events]
        assert "inject.rate_scale_on" in kinds
        assert "inject.compute_scale_on" in kinds
        replay_report, _ = run_engine(app, (replay,))
        assert replay_report.records == loaded_report.records
        assert replay_report.finish_time_per_task == loaded_report.finish_time_per_task

    def test_replay_is_rerunnable_after_reset(self):
        app = make_application()
        sink = MemoryTraceSink()
        loaded_report, _ = run_engine(
            app, (BackgroundTrafficInjector(rate=150.0, size=1 * MB, seed=1,
                                            max_flows=4),), trace=sink)
        replay = TraceReplayInjector(sink.records)
        first, _ = run_engine(app, (replay,))
        second, _ = run_engine(app, (replay,))  # engine calls reset() itself
        assert first.records == second.records == loaded_report.records

    def test_fluid_simulator_replay(self):
        transfers = [
            Transfer(i, src=i % 3, dst=(i + 1) % 3, size=300_000.0,
                     start_time=0.001 * i)
            for i in range(6)
        ]

        def provider():
            spec = cluster(3)
            topology = CrossbarTopology(num_hosts=3, technology=spec.technology)
            return EmulatorRateProvider(spec.technology, topology)

        sink = MemoryTraceSink()
        loaded = FluidTransferSimulator(
            provider(),
            injectors=(BackgroundTrafficInjector(rate=400.0, size=1 * MB,
                                                 seed=5, max_flows=5),),
            trace=sink,
        ).run(transfers)
        replayed = FluidTransferSimulator(
            provider(), injectors=(TraceReplayInjector(sink.records),)
        ).run(transfers)
        assert replayed == loaded


class TestReplayMechanics:
    def test_replay_events_filters_and_keeps_order(self):
        records = [
            TraceRecord(0.0, "calendar.activate", "a", {}),
            TraceRecord(0.1, "inject.flow_start", "bg#0",
                        {"src": 0, "dst": 1, "size": 1e6, "owner": "bg"}),
            TraceRecord(0.2, "inject.apply", "bg", {"index": 0}),
            TraceRecord(0.3, "inject.reprice", None, {}),
            TraceRecord(0.4, "inject.flow_end", "bg#0", {}),
        ]
        events = replay_events(records)
        assert [r.kind for r in events] == ["inject.flow_start", "inject.flow_end"]

    def test_flow_start_payload_is_validated(self):
        with pytest.raises(TraceError):
            replay_events([TraceRecord(0.0, "inject.flow_start", "x",
                                       {"src": 0, "dst": 1})])

    def test_scale_payload_is_validated(self):
        with pytest.raises(TraceError):
            replay_events([TraceRecord(0.0, "inject.rate_scale_on", 0, {})])

    def test_flow_end_uses_the_recorded_to_live_id_mapping(self):
        class FakeState:
            def __init__(self):
                self.now = 0.0
                self.hosts = (0, 1)
                self.started = []
                self.ended = []

            def start_flow(self, src, dst, size, owner="background"):
                tid = f"live#{len(self.started)}"
                self.started.append((src, dst, size, owner))
                return tid

            def end_flow(self, tid):
                self.ended.append(tid)

        replay = TraceReplayInjector([
            TraceRecord(0.0, "inject.flow_start", "recorded#7",
                        {"src": 0, "dst": 1, "size": 1e6, "owner": "bg"}),
            TraceRecord(0.5, "inject.flow_end", "recorded#7", {}),
        ])
        state = FakeState()
        assert replay.next_event(0.0) == 0.0
        replay.apply(state)
        assert replay.next_event(0.0) == 0.5
        replay.apply(state)
        assert replay.next_event(1.0) is None
        assert state.started == [(0, 1, 1e6, "bg")]
        assert state.ended == ["live#0"]

    def test_describe(self):
        replay = TraceReplayInjector([
            TraceRecord(0.25, "inject.flow_start", "a",
                        {"src": 0, "dst": 1, "size": 1.0}),
        ], name="measured")
        info = replay.describe()
        assert info["name"] == "measured"
        assert info["events"] == 1
        assert info["start"] == info["until"] == 0.25

    def test_flow_end_without_a_recorded_start_is_skipped(self):
        """A sliced trace can carry a flow_end whose start fell outside the
        window; the raw recorded id must never alias a replayed flow."""
        class FakeState:
            def __init__(self):
                self.now = 0.0
                self.hosts = (0, 1)
                self.ended = []

            def start_flow(self, src, dst, size, owner="background"):
                return "background#1"  # the id the stray end would alias

            def end_flow(self, tid):
                self.ended.append(tid)

        replay = TraceReplayInjector([
            TraceRecord(0.0, "inject.flow_start", "background#6",
                        {"src": 0, "dst": 1, "size": 1e6}),
            # start of background#1 fell outside the slice
            TraceRecord(0.1, "inject.flow_end", "background#1", {}),
        ])
        state = FakeState()
        replay.apply(state)
        replay.apply(state)
        assert state.ended == []  # the stray end is dropped, nothing aliased

    def test_empty_trace_replays_as_neutral(self):
        app = broadcast_application(4, 1 * MB)
        clean, _ = run_engine(app, ())
        replayed, stats = run_engine(app, (TraceReplayInjector([]),))
        assert replayed.records == clean.records
        assert stats["injected_events"] == 0
