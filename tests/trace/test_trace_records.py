"""Tests for the trace record schema, the log container and the sinks."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TraceError
from repro.network.fluid import CalendarStats, CalendarStatsSnapshot
from repro.simulator.engine import EngineLoopStats, EngineStatsSnapshot
from repro.trace import (
    KNOWN_KINDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    JsonlTraceSink,
    MemoryTraceSink,
    NullTraceSink,
    TraceLog,
    TraceRecord,
    active_sink,
    read_trace_log,
)


def sample_record(kind: str, index: int) -> TraceRecord:
    """A representative record of ``kind`` with a kind-typical payload."""
    payloads = {
        "run.meta": (None, {"workload": "broadcast", "hosts": 4, "seed": 0}),
        "calendar.activate": (index, {"src": 0, "dst": 1, "size": 1e6}),
        "calendar.complete": (index, {}),
        "calendar.cancel": (index, {"remaining": 12.5}),
        "calendar.retime": (index, {"rate": 1e8, "remaining": 5e5,
                                    "completion": 0.25}),
        "calendar.flush": (None, {"added": 2, "removed": 1, "changed": 3,
                                  "active": 4}),
        "calendar.reprice": (None, {"active": 4, "changed": 4}),
        "calendar.compaction": (None, {"dropped": 40, "kept": 24}),
        "calendar.stall": (index, {"rate": 0.0}),
        "calendar.stall_retry": (None, {"ids": ["t1", "t2"]}),
        "step": ("engine", {"step": index}),
        "task.state": (index % 4, {"status": "send", "label": ""}),
        "task.event": (index % 4, {"kind": "send", "start": 0.0, "end": 0.5,
                                   "size": 1024, "peer": 1, "label": "",
                                   "penalty": 1.5, "index": 0}),
        "inject.apply": ("background", {"index": 0}),
        "inject.flow_start": (f"background#{index}",
                              {"src": 0, "dst": 1, "size": 4e6,
                               "owner": "background"}),
        "inject.flow_end": (f"background#{index}", {}),
        "inject.rate_scale_on": (0, {"factor": 0.5, "hosts": [0, 1]}),
        "inject.rate_scale_off": (0, {}),
        "inject.compute_scale_on": (1, {"factor": 0.5, "hosts": None}),
        "inject.compute_scale_off": (1, {}),
        "inject.reprice": (None, {}),
        "app.meta": (None, {"num_tasks": 4, "name": "hpl"}),
        "app.compute": (0, {"duration": 0.125, "label": "dgemm"}),
        "app.send": (0, {"dst": 1, "size": 1048576, "tag": 7}),
        "app.recv": (1, {"src": None, "size": None, "tag": 7}),
        "app.barrier": (2, {}),
        "metrics.sample": (None, {"engine.steps": 80,
                                  "calendar.flush_s.count": 80,
                                  "calendar.flush_s.total": 0.004}),
    }
    subject, data = payloads[kind]
    return TraceRecord(time=0.125 * index, kind=kind, subject=subject, data=data)


class TestTraceRecord:
    def test_every_known_kind_round_trips_through_dicts(self):
        for index, kind in enumerate(KNOWN_KINDS):
            record = sample_record(kind, index)
            assert TraceRecord.from_dict(record.to_dict()) == record

    def test_to_dict_omits_empty_fields(self):
        record = TraceRecord(1.0, "calendar.complete")
        assert record.to_dict() == {"t": 1.0, "kind": "calendar.complete"}

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"t": 1.0})
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"kind": "x", "t": "not-a-number"})
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"kind": "x", "data": [1, 2]})


class TestTraceLog:
    def build(self):
        return TraceLog([
            TraceRecord(0.0, "run.meta", None, {"workload": "w"}),
            TraceRecord(0.0, "calendar.activate", "a", {}),
            TraceRecord(0.5, "calendar.flush", None, {}),
            TraceRecord(1.0, "calendar.complete", "a", {}),
            TraceRecord(1.0, "step", "engine", {"step": 1}),
        ])

    def test_queries(self):
        log = self.build()
        assert len(log) == 5
        assert log.kinds()["calendar.activate"] == 1
        assert [r.kind for r in log.records_of("calendar")] == [
            "calendar.activate", "calendar.flush", "calendar.complete"]
        assert [r.kind for r in log.records_of("calendar.flush")] == [
            "calendar.flush"]
        assert log.subjects() == ["a", "engine"]
        assert log.duration == 1.0
        assert log.meta() == {"workload": "w"}

    def test_between_is_half_open(self):
        log = self.build()
        cut = log.between(0.5, 1.0)
        assert [r.kind for r in cut] == ["calendar.flush"]

    def test_empty_log(self):
        log = TraceLog()
        assert len(log) == 0
        assert log.duration == 0.0
        assert log.meta() == {}
        assert log.subjects() == []
        assert not log.records_of("calendar")


class TestSnapshots:
    def test_calendar_snapshot_keeps_dict_access(self):
        stats = CalendarStats(flushes=3, rate_updates=7)
        snap = stats.freeze()
        assert isinstance(snap, CalendarStatsSnapshot)
        assert snap["flushes"] == 3
        assert snap.get("rate_updates") == 7
        assert dict(**snap) == stats.snapshot()
        assert "flushes" in snap and len(snap) == 15
        with pytest.raises(KeyError):
            snap["no_such_counter"]

    def test_engine_snapshot_merges_calendar_counters_flat(self):
        loop = EngineLoopStats(iterations=5, steps=4, injected_events=1,
                               background_flows=2,
                               calendar=CalendarStats(retimed=9).snapshot())
        snap = loop.freeze()
        assert isinstance(snap, EngineStatsSnapshot)
        assert snap["iterations"] == 5
        assert snap["retimed"] == 9          # calendar counter, flat access
        assert snap.calendar.retimed == 9    # typed access
        assert snap.as_dict() == loop.snapshot()
        assert sorted(snap.keys()) == sorted(loop.snapshot().keys())

    def test_snapshots_compare_by_value(self):
        assert CalendarStats(flushes=1).freeze() == CalendarStats(flushes=1).freeze()
        assert CalendarStats(flushes=1).freeze() != CalendarStats(flushes=2).freeze()


class TestSinks:
    def test_active_sink_normalises_disabled_sinks(self):
        assert active_sink(None) is None
        assert active_sink(NullTraceSink()) is None
        memory = MemoryTraceSink()
        assert active_sink(memory) is memory

    def test_memory_sink_is_bounded(self):
        sink = MemoryTraceSink(maxlen=3)
        for index in range(10):
            sink.emit(TraceRecord(float(index), "step", "fluid", {}))
        assert sink.emitted == 10
        assert [r.time for r in sink.records] == [7.0, 8.0, 9.0]
        assert len(sink.log()) == 3
        sink.clear()
        assert sink.emitted == 0 and not sink.records

    def test_jsonl_round_trip_of_every_record_kind(self, tmp_path):
        path = tmp_path / "all-kinds.jsonl"
        records = [sample_record(kind, i) for i, kind in enumerate(KNOWN_KINDS)]
        with JsonlTraceSink(path) as sink:
            for record in records:
                sink.emit(record)
        log = read_trace_log(path)
        assert log.version == TRACE_VERSION
        assert log.records == records

    def test_jsonl_zero_event_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        JsonlTraceSink(path).close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": TRACE_FORMAT, "version": TRACE_VERSION}
        log = read_trace_log(path)
        assert len(log) == 0 and log.duration == 0.0

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(TraceError):
            sink.emit(TraceRecord(0.0, "step"))

    def test_reader_rejects_bad_files(self, tmp_path):
        missing_header = tmp_path / "nohdr.jsonl"
        missing_header.write_text('{"t": 0.0, "kind": "step"}\n')
        with pytest.raises(TraceError):
            read_trace_log(missing_header)

        bad_version = tmp_path / "v999.jsonl"
        bad_version.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": 999}) + "\n")
        with pytest.raises(TraceError):
            read_trace_log(bad_version)

        truly_empty = tmp_path / "zero-bytes.jsonl"
        truly_empty.write_text("")
        with pytest.raises(TraceError):
            read_trace_log(truly_empty)

        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION})
            + "\nnot json\n")
        with pytest.raises(TraceError):
            read_trace_log(garbage)

    def test_bad_path_fails_at_construction(self, tmp_path):
        with pytest.raises(TraceError):
            JsonlTraceSink(tmp_path / "no" / "such" / "dir" / "t.jsonl")


class TestAbnormalExit:
    """Buffered records survive a process that never reaches close()."""

    def run_python(self, source: str) -> None:
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).parents[1])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", source], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 3, proc.stderr

    def test_atexit_flushes_an_unclosed_sink(self, tmp_path):
        path = tmp_path / "died.jsonl"
        self.run_python(
            "from repro.trace import JsonlTraceSink, TraceRecord\n"
            f"sink = JsonlTraceSink({str(path)!r})\n"
            "for i in range(5):\n"
            "    sink.emit(TraceRecord(float(i), 'calendar.complete', i))\n"
            "raise SystemExit(3)\n"  # leaves the buffer unflushed
        )
        log = read_trace_log(path)
        assert [r.subject for r in log] == [0, 1, 2, 3, 4]

    def test_atexit_flush_lands_on_a_record_boundary(self, tmp_path):
        """A run that dies mid-buffer still leaves a batch-readable file —
        complete trailing record, no partial line."""
        path = tmp_path / "died-mid-flush.jsonl"
        self.run_python(
            "from repro.trace import JsonlTraceSink, TraceRecord\n"
            f"sink = JsonlTraceSink({str(path)!r}, flush_every=3)\n"
            "for i in range(7):\n"  # flushes at 3 and 6; one record buffered
            "    sink.emit(TraceRecord(float(i), 'step', 'engine', {'step': i}))\n"
            "raise SystemExit(3)\n"
        )
        assert path.read_text().endswith("\n")
        assert len(read_trace_log(path)) == 7
