"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on environments whose ``pip``/``wheel``
combination cannot build PEP 660 editable wheels (the offline evaluation
container ships setuptools without ``wheel``).
"""

from setuptools import setup

setup()
