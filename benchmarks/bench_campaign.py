"""Campaign benchmark — serial-cold vs parallel-warm scenario sweeps.

A ~32-scenario campaign (synthetic graphs and a broadcast application over
schemes × networks × hosts × seeds) is executed twice:

* **serial-cold**: one worker, fresh persistent cache — the reference run,
  and the bit-exactness baseline;
* **parallel-warm**: 4 workers, the persistent cache reloaded from the first
  run's file — the steady state of repeated campaigns.

The two runs must produce identical results; the benchmark reports model
evaluations, cache traffic and wall clock, asserts the ≥2× evaluation
reduction the persistent cache promises (in practice the warm run performs
*zero* evaluations), and appends the numbers to ``BENCH_campaign.json`` at
the repository root so the perf trajectory accumulates across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec, PersistentPenaltyCache

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

SPEC = {
    "name": "bench-campaign",
    "workloads": [
        {"kind": "synthetic", "name": "random-tree", "params": {"size": "4M"}},
        {"kind": "synthetic", "name": "random",
         "params": {"size": "4M", "num_communications": 18}},
        {"kind": "synthetic", "name": "hotspot", "params": {"size": "4M"}},
        {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
    ],
    "networks": ["ethernet", "myrinet"],
    "models": ["auto"],
    "host_counts": [10, 12],
    "placements": ["RRP"],
    "seeds": [0, 1],
}


def run_campaign(cache_path: Path, max_workers: int, backend: str):
    spec = CampaignSpec.from_dict(SPEC)
    cache = PersistentPenaltyCache.load(cache_path)
    runner = CampaignRunner(spec, cache=cache, max_workers=max_workers,
                            backend=backend)
    started = time.perf_counter()
    store = runner.run()
    elapsed = time.perf_counter() - started
    cache.save()
    return store, elapsed


def test_campaign_serial_cold_vs_parallel_warm(tmp_path, emit):
    cache_path = tmp_path / "penalty-cache.json"

    cold_store, cold_time = run_campaign(cache_path, max_workers=1,
                                         backend="serial")
    warm_store, warm_time = run_campaign(cache_path, max_workers=4,
                                         backend="thread")

    # orchestration, not approximation: identical scenario results
    assert [r.to_dict() for r in warm_store.results] == \
        [r.to_dict() for r in cold_store.results]

    cold_stats, warm_stats = cold_store.stats, warm_store.stats
    eval_ratio = cold_stats["comm_evaluations"] / max(1, warm_stats["comm_evaluations"])
    speedup = cold_time / warm_time if warm_time > 0 else float("inf")

    lines = [
        f"campaign: {len(cold_store)} scenarios "
        f"({len(SPEC['workloads'])} workloads x {len(SPEC['networks'])} networks "
        f"x {len(SPEC['host_counts'])} host counts x {len(SPEC['seeds'])} seeds)",
        "",
        f"{'run':<16s}{'comm evals':>12s}{'cache hits':>12s}{'wall clock':>14s}",
        (f"{'serial-cold':<16s}{cold_stats['comm_evaluations']:>12d}"
         f"{cold_stats['cache_hits']:>12d}{cold_time:>12.3f} s"),
        (f"{'parallel-warm':<16s}{warm_stats['comm_evaluations']:>12d}"
         f"{warm_stats['cache_hits']:>12d}{warm_time:>12.3f} s"),
        "",
        f"model-evaluation reduction: {eval_ratio:.1f}x   "
        f"wall-clock speedup: {speedup:.2f}x",
    ]
    record = {
        "benchmark": "bench_campaign",
        "scenarios": len(cold_store),
        "serial_cold": {"wall_clock_s": round(cold_time, 4), **cold_stats},
        "parallel_warm": {"wall_clock_s": round(warm_time, 4), **warm_stats},
        "eval_ratio": (round(eval_ratio, 2)
                       if eval_ratio != float("inf") else "inf"),
        "wall_clock_speedup": round(speedup, 2),
    }
    emit("campaign", "\n".join(lines), record=record, bench_json=BENCH_JSON)

    # acceptance: a warm persistent cache must at least halve the model
    # evaluations of a repeated campaign (it zeroes them when every scenario
    # is structural, as here).  Wall clock is recorded but not asserted — on
    # a sub-second sweep a loaded CI runner can invert timings without any
    # code regression, while the evaluation count is deterministic.
    assert cold_stats["comm_evaluations"] >= 2 * max(1, warm_stats["comm_evaluations"]), record
