"""Figures 5 and 6 — the Myrinet state-set analysis of the example graph.

Regenerates Figure 6 exactly: the number of state sets, the emission sums,
the per-source minima and the penalties of the six communications of the
Figure 5 example graph, and checks them against the published table.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE6_NUM_STATE_SETS, FIGURE6_TABLE, render_table
from repro.core import MyrinetModel
from repro.scheme import figure5_graph


def analyse_figure5():
    return MyrinetModel().analyse(figure5_graph())


@pytest.mark.benchmark(group="figure6")
def test_figure6_state_set_table(benchmark, emit):
    analysis = benchmark(analyse_figure5)

    rows = []
    for name in analysis.emission:
        paper = FIGURE6_TABLE[name]
        rows.append([
            name,
            analysis.emission[name], int(paper["sum"]),
            analysis.adjusted_emission[name], int(paper["minimum"]),
            analysis.penalties[name], paper["penalty"],
        ])
    table = render_table(
        ["com.", "Sum", "paper", "Min", "paper", "penalty", "paper"],
        rows,
        title=(
            "Figure 6 - Myrinet state-set analysis of the Figure 5 graph "
            f"({analysis.num_state_sets} state sets, paper: {FIGURE6_NUM_STATE_SETS})"
        ),
        float_format="{:.2f}",
    )
    emit("fig6_myrinet_state_sets", table)

    # exact reproduction of the published table
    assert analysis.num_state_sets == FIGURE6_NUM_STATE_SETS
    for name, paper in FIGURE6_TABLE.items():
        assert analysis.emission[name] == paper["sum"]
        assert analysis.adjusted_emission[name] == paper["minimum"]
        assert analysis.penalties[name] == pytest.approx(paper["penalty"])
