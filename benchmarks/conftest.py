"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
absolute numbers come from the calibrated emulator rather than the original
clusters, each benchmark prints a paper-style text table (and writes it under
``benchmarks/results/``) so the shape can be compared against the published
values side by side.

Benchmarks that track a cross-PR perf trajectory pass their result ``record``
(and the trajectory file) to :func:`emit` as well: the text report and the
JSON record are then written from the **same in-memory object** — the
``record:`` footer of every ``results/*.txt`` is the exact JSON appended to
the trajectory file, so the two can never drift apart.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def append_bench_record(bench_json: Path, record: dict) -> None:
    """Append one result record to a cross-PR perf trajectory file."""
    history = []
    if bench_json.exists():
        try:
            history = json.loads(bench_json.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            history = []
    history.append(record)
    bench_json.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a report block and persist it to benchmarks/results/<name>.txt.

    When ``record`` is given, its JSON is appended to the text report as a
    ``record:`` footer; when ``bench_json`` is given too, the same object is
    appended to that trajectory file.
    """

    def _emit(name: str, text: str, record: dict | None = None,
              bench_json: Path | None = None) -> None:
        if record is not None:
            text = text + "\n\nrecord: " + json.dumps(record, sort_keys=True)
        banner = "=" * 78
        print(f"\n{banner}\n{name}\n{banner}\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        if record is not None and bench_json is not None:
            append_bench_record(bench_json, record)

    return _emit
