"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
absolute numbers come from the calibrated emulator rather than the original
clusters, each benchmark prints a paper-style text table (and writes it under
``benchmarks/results/``) so the shape can be compared against the published
values side by side; the ``benchmark`` fixture times the computational core
of the experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Print a report block and persist it to benchmarks/results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        banner = "=" * 78
        print(f"\n{banner}\n{name}\n{banner}\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
