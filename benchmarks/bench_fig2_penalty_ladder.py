"""Figure 2 — penalties of the six-scheme ladder on the three interconnects.

Regenerates the central table of §IV.C: for every scheme S1…S6 and every
network (Gigabit Ethernet, Myrinet 2000, InfiniBand InfiniHost III), the
penalty of every communication as measured on the emulated cluster, printed
next to the values the paper measured on its physical clusters.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE2_PENALTIES, penalty_ladder_table
from repro.benchmark import PenaltyTool
from repro.scheme import figure2_schemes

NETWORKS = {
    "gigabit-ethernet": "ethernet",
    "myrinet": "myrinet",
    "infiniband": "infiniband",
}


def measure_ladder():
    """Measure every Figure 2 scheme on every emulated network."""
    schemes = figure2_schemes()
    tools = {label: PenaltyTool(alias, iterations=1, num_hosts=16)
             for label, alias in NETWORKS.items()}
    results = {}
    for scheme_id, graph in schemes.items():
        results[scheme_id] = {
            label: tool.measure(graph).penalties for label, tool in tools.items()
        }
    return results


@pytest.mark.benchmark(group="figure2")
def test_figure2_penalty_ladder(benchmark, emit):
    results = benchmark(measure_ladder)
    table = penalty_ladder_table(
        results,
        reference=FIGURE2_PENALTIES,
        title="Figure 2 - measured penalties, emulator (paper value in parentheses)",
    )
    emit("fig2_penalty_ladder", table)

    # shape assertions: the reproduction must preserve who is penalised and how much
    assert results["S3"]["gigabit-ethernet"]["a"] == pytest.approx(2.25, rel=0.05)
    assert results["S3"]["myrinet"]["a"] == pytest.approx(2.8, rel=0.05)
    assert results["S3"]["infiniband"]["a"] == pytest.approx(2.61, rel=0.05)
    assert results["S4"]["myrinet"]["d"] == pytest.approx(1.45, rel=0.1)
    # the second reverse stream must hurt the senders on every network
    for network in NETWORKS:
        assert results["S5"][network]["a"] > results["S4"][network]["a"]
