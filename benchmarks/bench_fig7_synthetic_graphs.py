"""Figure 7 — accuracy of the Myrinet model on the synthetic graphs MK1 and MK2.

For the tree graph MK1 and the complete graph MK2 (4 MB messages), the
benchmark measures every communication on the emulated Myrinet cluster,
predicts it with the Myrinet model, and prints the Tm / Tp / E_rel table with
the per-graph average absolute error E_abs — the exact layout of Figure 7.
The Gigabit Ethernet model is swept on the same graphs (the paper discusses
both in §VI.C).
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE7_EABS, compare_times, measured_vs_predicted_table
from repro.benchmark import PenaltyTool
from repro.core import GigabitEthernetModel, LinearCostModel, MyrinetModel
from repro.scheme import mk1_tree, mk2_complete


def evaluate(network: str, model, graph):
    tool = PenaltyTool(network, iterations=1, num_hosts=16)
    measured = tool.measure(graph).times
    cost = LinearCostModel(
        latency=tool.technology.latency,
        bandwidth=tool.technology.single_stream_bandwidth,
        envelope=tool.technology.mpi_envelope,
    )
    predicted = model.predict_times(graph, cost)
    return compare_times(measured, predicted, graph_name=graph.name)


def run_figure7():
    reports = {}
    for label, graph in (("MK1", mk1_tree()), ("MK2", mk2_complete())):
        reports[("myrinet", label)] = evaluate("myrinet", MyrinetModel(), graph)
        reports[("ethernet", label)] = evaluate("ethernet", GigabitEthernetModel(), graph)
    return reports


@pytest.mark.benchmark(group="figure7")
def test_figure7_synthetic_graphs(benchmark, emit):
    reports = benchmark(run_figure7)

    blocks = []
    for (network, label), report in reports.items():
        paper_eabs = FIGURE7_EABS.get(label)
        suffix = f" (paper Eabs on the real cluster: {paper_eabs} %)" if network == "myrinet" else ""
        blocks.append(measured_vs_predicted_table(
            report.measured, report.predicted, report.relative,
            title=f"Figure 7 - {label} on {network}{suffix}",
        ))
    emit("fig7_synthetic_graphs", "\n\n".join(blocks))

    myrinet_mk1 = reports[("myrinet", "MK1")]
    myrinet_mk2 = reports[("myrinet", "MK2")]
    # shape: the tree is predicted at least as well as the complete graph,
    # and both stay within a usable error budget against the emulator
    assert myrinet_mk1.absolute <= myrinet_mk2.absolute
    assert myrinet_mk1.absolute < 30.0
    assert myrinet_mk2.absolute < 45.0
