"""Extension E1 — the InfiniBand model (the paper's §VII future work).

The paper measures InfiniHost III penalties (Figure 2) but leaves the model
for future work.  This benchmark evaluates the extension model implemented in
:mod:`repro.core.infiniband_model` on the full Figure 2 ladder against both
the paper's published measurements and the emulated cluster.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE2_PENALTIES, render_table
from repro.benchmark import PenaltyTool
from repro.core import InfinibandModel
from repro.scheme import figure2_schemes


def evaluate_infiniband_model():
    model = InfinibandModel()
    tool = PenaltyTool("infiniband", iterations=1, num_hosts=16)
    rows = []
    for scheme_id, graph in figure2_schemes().items():
        predicted = model.penalties(graph)
        emulated = tool.measure(graph).penalties
        paper = FIGURE2_PENALTIES[scheme_id]["infiniband"]
        for name in graph.names:
            rows.append((scheme_id, name, predicted[name], emulated[name], paper[name]))
    return rows


@pytest.mark.benchmark(group="extension-infiniband")
def test_extension_infiniband_model(benchmark, emit):
    rows = benchmark(evaluate_infiniband_model)
    table = render_table(
        ["scheme", "com.", "model", "emulator", "paper"],
        [list(r) for r in rows],
        title="Extension E1 - InfiniBand model vs emulator vs paper (Figure 2 ladder)",
        float_format="{:.2f}",
    )
    emit("ext_infiniband_model", table)

    # the model must track the paper's published penalties within 15 % on
    # every communication of the ladder
    for scheme_id, name, predicted, emulated, paper in rows:
        assert predicted == pytest.approx(paper, rel=0.15), (scheme_id, name)
