"""Figure 4 — verification of the Gigabit Ethernet parameters (β, γo, γi).

Reproduces the two halves of §V.A:

1. the calibration protocol itself — β from the outgoing ladder and γo/γi
   from the verification scheme, run against the emulated GigE cluster;
2. the Figure 4 table — measured vs predicted times for the six
   communications of the verification scheme (4 MB messages), printed next
   to the times the paper reports.
"""

from __future__ import annotations

import pytest

from repro.analysis import FIGURE4_TIMES, measured_vs_predicted_table
from repro.benchmark import PenaltyTool
from repro.core import GigabitEthernetModel, LinearCostModel, calibrate_from_measurer
from repro.scheme import figure4_scheme
from repro.units import MB


def run_verification():
    tool = PenaltyTool("ethernet", iterations=1, num_hosts=16)
    parameters = calibrate_from_measurer(tool.measure_penalties)
    graph = figure4_scheme(size=4 * MB)
    measured = tool.measure(graph).times
    cost = LinearCostModel(
        latency=tool.technology.latency,
        bandwidth=tool.technology.single_stream_bandwidth,
        envelope=tool.technology.mpi_envelope,
    )
    predicted = GigabitEthernetModel(parameters).predict_times(graph, cost)
    return parameters, measured, predicted


@pytest.mark.benchmark(group="figure4")
def test_figure4_parameter_verification(benchmark, emit):
    parameters, measured, predicted = benchmark(run_verification)

    paper_measured = {k: v["measured"] for k, v in FIGURE4_TIMES.items()}
    paper_predicted = {k: v["predicted"] for k, v in FIGURE4_TIMES.items()}
    table = measured_vs_predicted_table(
        measured, predicted,
        title=(
            "Figure 4 - verification scheme, 4 MB messages, emulated GigE cluster\n"
            f"calibrated parameters: beta={parameters.beta:.3f} "
            f"gamma_o={parameters.gamma_o:.3f} gamma_i={parameters.gamma_i:.3f} "
            "(paper: 0.750 / 0.115 / 0.036)"
        ),
        paper_measured=paper_measured,
        paper_predicted=paper_predicted,
    )
    emit("fig4_parameter_verification", table)

    # β must match the paper's 0.75 and the γ estimates must stay small and ordered
    assert parameters.beta == pytest.approx(0.75, abs=0.03)
    assert 0.0 <= parameters.gamma_i <= parameters.gamma_o < 0.35
    # the paper's qualitative ordering of predicted times: d fastest, c slowest
    assert predicted["d"] == min(predicted.values())
    assert predicted["c"] == max(predicted.values())
    # every prediction within 40 % of the emulated measurement (communication c
    # is the pessimistic outlier: the literal max(p_o, p_i) rule over-predicts
    # it, exactly the deviation documented for Figure 4 in EXPERIMENTS.md),
    # and the scheme-level mean absolute error stays moderate.
    errors = []
    for name in measured:
        assert predicted[name] == pytest.approx(measured[name], rel=0.40)
        errors.append(abs(predicted[name] - measured[name]) / measured[name] * 100.0)
    assert sum(errors) / len(errors) < 20.0
