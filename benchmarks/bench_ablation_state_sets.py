"""Ablation A2 — cost of the Myrinet state-set enumeration.

The Myrinet model enumerates maximal independent sets, which is exponential
in the worst case.  This benchmark measures the enumeration time as the
conflict graph grows (random dense schemes) and verifies that the connected-
component decomposition gives the same penalties while analysing realistic
sparse graphs much faster than the monolithic enumeration.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.core import MyrinetModel
from repro.workloads import complete_graph_scheme, random_graph_scheme


def enumeration_cost(sizes=(4, 5, 6, 7)):
    rows = []
    for n in sizes:
        graph = complete_graph_scheme(n, seed=n)
        model = MyrinetModel(max_component_size=64)
        start = time.perf_counter()
        analysis = model.analyse(graph)
        elapsed = time.perf_counter() - start
        rows.append((n, len(graph), analysis.num_state_sets, elapsed * 1e3))
    return rows


@pytest.mark.benchmark(group="ablation-state-sets")
def test_ablation_enumeration_cost(benchmark, emit):
    rows = benchmark(enumeration_cost)
    table = render_table(
        ["nodes", "communications", "state sets", "time [ms]"],
        [list(r) for r in rows],
        title="Ablation A2 - state-set enumeration cost on complete graphs K_n",
        float_format="{:.2f}",
    )
    emit("ablation_state_sets", table)
    # the number of state sets must grow with the graph density
    counts = [r[2] for r in rows]
    assert counts == sorted(counts)


@pytest.mark.benchmark(group="ablation-state-sets")
def test_ablation_component_decomposition(benchmark, emit):
    """Decomposition is exact and required for multi-component graphs."""
    graph = random_graph_scheme(num_nodes=18, num_communications=20, seed=11)

    def both():
        merged = MyrinetModel(decompose=False, max_component_size=64).penalties(graph)
        decomposed = MyrinetModel(decompose=True, max_component_size=64).penalties(graph)
        return merged, decomposed

    merged, decomposed = benchmark(both)
    mismatches = [n for n in merged if abs(merged[n] - decomposed[n]) > 1e-9]
    emit(
        "ablation_component_decomposition",
        f"graph: {len(graph)} communications, "
        f"components: {len(graph.conflict_components())}, mismatching penalties: {mismatches}",
    )
    assert not mismatches
