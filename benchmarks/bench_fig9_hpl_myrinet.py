"""Figure 9 — evaluation of the Myrinet model on HPL (Linpack).

Same protocol as Figure 8, on the emulated Myrinet 2000 cluster with the
state-set model.  The paper's conclusion — the Myrinet model is globally
accurate, at least as good as the Gigabit Ethernet one — is asserted by
comparing the two mean errors.
"""

from __future__ import annotations

import pytest

from repro.analysis import per_task_error_table
from repro.core import GigabitEthernetModel, MyrinetModel

from bench_fig8_hpl_gigabit import run_hpl


@pytest.mark.benchmark(group="figure9", min_rounds=1, max_time=1.0, warmup=False)
def test_figure9_hpl_myrinet(benchmark, emit):
    results = benchmark.pedantic(run_hpl, args=("myrinet", MyrinetModel()),
                                 rounds=1, iterations=1)

    blocks = []
    for placement, report in results.items():
        blocks.append(per_task_error_table(
            report.measured, report.predicted,
            title=f"Figure 9 - HPL N=20500 on Myrinet 2000, placement {placement}",
        ))
    emit("fig9_hpl_myrinet", "\n\n".join(blocks))

    for placement, report in results.items():
        assert report.mean_error < 30.0, placement

    # cross-figure claim of §VI.D: the Myrinet model is globally accurate and
    # not worse than the Gigabit Ethernet model on the same workload
    ethernet_results = run_hpl("ethernet", GigabitEthernetModel())
    myrinet_mean = sum(r.mean_error for r in results.values()) / len(results)
    ethernet_mean = sum(r.mean_error for r in ethernet_results.values()) / len(ethernet_results)
    assert myrinet_mean <= ethernet_mean + 5.0
