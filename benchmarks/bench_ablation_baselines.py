"""Ablation A1 — the paper's models vs the related-work baselines (§II).

The motivation of the paper is that linear models (LogP/LogGP, i.e. no
contention) and the simple path-sharing multiplier of Kim & Lee mispredict
concurrent communications.  This benchmark sweeps a family of random schemes
on each emulated network and reports the average absolute error E_abs of:

* the paper's model for that network,
* ideal fair sharing,
* Kim & Lee's maximum-sharing multiplier,
* the no-contention (LogGP-like) linear model.
"""

from __future__ import annotations

import pytest

from repro.analysis import compare_times, render_table
from repro.benchmark import PenaltyTool
from repro.core import (
    EngineStats,
    FairShareModel,
    KimLeeModel,
    LinearCostModel,
    NoContentionModel,
    PenaltyCache,
    cached_predict,
    model_for_network,
)
from repro.workloads import complete_graph_scheme, random_graph_scheme, random_tree_scheme

NETWORKS = ("ethernet", "myrinet", "infiniband")


def scheme_suite():
    return [
        random_tree_scheme(8, seed=1),
        random_tree_scheme(10, seed=2),
        random_graph_scheme(6, 9, seed=3),
        random_graph_scheme(8, 12, seed=4),
        complete_graph_scheme(5, seed=5),
    ]


def evaluate_models():
    # one penalty cache for the whole sweep: the per-model memo_key namespace
    # keeps the entries apart while isomorphic components (ubiquitous across
    # the random suite) are priced once per model
    cache = PenaltyCache()
    stats = EngineStats()
    rows = {}
    for network in NETWORKS:
        tool = PenaltyTool(network, iterations=1, num_hosts=16)
        cost = LinearCostModel(
            latency=tool.technology.latency,
            bandwidth=tool.technology.single_stream_bandwidth,
            envelope=tool.technology.mpi_envelope,
        )
        models = {
            "paper model": model_for_network(network),
            "fair share": FairShareModel(),
            "kim-lee": KimLeeModel(),
            "no contention": NoContentionModel(),
        }
        errors = {label: [] for label in models}
        for graph in scheme_suite():
            measured = tool.measure(graph).times
            for label, model in models.items():
                predicted = cached_predict(model, graph, cost, cache=cache,
                                           stats=stats).times
                errors[label].append(compare_times(measured, predicted).absolute)
        rows[network] = {
            label: sum(values) / len(values) for label, values in errors.items()
        }
    return rows, stats.snapshot()


@pytest.mark.benchmark(group="ablation-baselines", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_models_vs_baselines(benchmark, emit):
    rows, cache_stats = benchmark.pedantic(evaluate_models, rounds=1, iterations=1)

    table = render_table(
        ["network", "paper model", "fair share", "kim-lee", "no contention"],
        [[network] + [rows[network][k] for k in
                      ("paper model", "fair share", "kim-lee", "no contention")]
         for network in NETWORKS],
        title="Ablation A1 - mean E_abs [%] over the random scheme suite",
        float_format="{:.1f}",
    )
    table += (
        f"\n\nshared penalty cache: {cache_stats['comm_evaluations']} model "
        f"evaluations, {cache_stats['cache_hits']} hits / "
        f"{cache_stats['cache_misses']} misses"
    )
    emit("ablation_baselines", table)

    # sharing one cache across the sweep must actually pool evaluations
    assert cache_stats["cache_hits"] > 0

    for network in NETWORKS:
        # the paper's contention models must clearly beat the linear (no
        # contention) model on every network — that is the paper's motivation.
        # Kim & Lee and ideal fair sharing are reported for comparison; against
        # the max-min emulator they can be competitive on dense graphs, which
        # is expected (the emulator shares more fairly than real Stop & Go
        # hardware) and is discussed in EXPERIMENTS.md.
        assert rows[network]["paper model"] < rows[network]["no contention"]
        assert rows[network]["paper model"] < 35.0
