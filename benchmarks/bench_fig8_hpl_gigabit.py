"""Figure 8 — evaluation of the Gigabit Ethernet model on HPL (Linpack).

The paper traces HPL (problem size 20500, increasing-ring panel broadcast)
with MPE and compares, per MPI task, the sum of the measured communication
times S_m with the sum predicted by the model S_p, under three placements
(RRN, RRP, Random).  This benchmark regenerates that figure with the
generated HPL trace running on the emulated GigE cluster (measured side) and
under the Gigabit Ethernet model (predicted side).

The trace keeps the paper's problem size (N = 20500) but only simulates the
first quarter of the panels by default so the benchmark stays interactive;
pass ``--full-hpl`` through the environment variable ``REPRO_FULL_HPL=1`` to
run the complete factorisation.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import compare_reports, per_task_error_table
from repro.cluster import custom_cluster
from repro.core import GigabitEthernetModel
from repro.simulator import Simulator
from repro.workloads import apply_tracing_overhead, generate_linpack

PLACEMENTS = ("RRN", "RRP", "random")
NUM_TASKS = 16
NUM_NODES = 8


def build_application():
    fraction = 1.0 if os.environ.get("REPRO_FULL_HPL") == "1" else 0.25
    app = generate_linpack(
        problem_size=20500, block_size=120, num_tasks=NUM_TASKS, panel_fraction=fraction,
    )
    # the paper's trace includes the 0.7 % MPE instrumentation overhead
    return apply_tracing_overhead(app)


def run_hpl(network: str, model):
    cluster = custom_cluster(num_nodes=NUM_NODES, cores_per_node=2, technology=network)
    app = build_application()
    results = {}
    for placement in PLACEMENTS:
        measured = Simulator.emulated(cluster).run(app, placement=placement, seed=7)
        predicted = Simulator.predictive(cluster, model=model).run(app, placement=placement, seed=7)
        results[placement] = compare_reports(measured, predicted)
    return results


@pytest.mark.benchmark(group="figure8", min_rounds=1, max_time=1.0, warmup=False)
def test_figure8_hpl_gigabit_ethernet(benchmark, emit):
    results = benchmark.pedantic(run_hpl, args=("ethernet", GigabitEthernetModel()),
                                 rounds=1, iterations=1)

    blocks = []
    for placement, report in results.items():
        blocks.append(per_task_error_table(
            report.measured, report.predicted,
            title=f"Figure 8 - HPL N=20500 on Gigabit Ethernet, placement {placement}",
        ))
    emit("fig8_hpl_gigabit", "\n\n".join(blocks))

    for placement, report in results.items():
        # the paper reports the GigE model as "a bit less accurate than Myrinet"
        # but still satisfactory; the per-task mean error must stay moderate
        assert report.mean_error < 30.0, placement
        assert all(v > 0 for v in report.measured.values())
