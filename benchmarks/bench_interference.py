"""Interference benchmark — foreground slowdown vs. background intensity.

A ring-allgather collective on 16 hosts is executed through the
event-calendar engine four times: on a clean fabric, under two background
traffic intensities (seeded Poisson flows riding the same calendar and
contending in the contention model) and under a degraded-fabric mix
(background flows plus a half-capacity link window).  The zero-intensity
run must be **bit-exact** with the clean run — injection disabled is not
merely "close", it is the same simulation — and the loaded runs record the
foreground slowdown the interference subsystem prices.  The numbers are
appended to ``BENCH_scale_engine.json`` so the trajectory accumulates
across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.campaign import InterferenceSpec
from repro.cluster import custom_cluster
from repro.simulator import Application, EngineConfig, Simulator
from repro.units import MB
from repro.workloads import ring_allgather

NUM_HOSTS = 16
MESSAGE_SIZE = 2 * MB
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale_engine.json"

#: the swept interference configurations (name, spec dict)
LEVELS = [
    ("off", {"name": "off",
             "background": {"rate": 0.0, "size": "4M"}}),
    ("light", {"name": "light",
               "background": {"rate": 150, "size": "2M", "max_flows": 48,
                              "seed": 11}}),
    ("heavy", {"name": "heavy",
               "background": {"rate": 600, "size": "4M", "max_flows": 192,
                              "seed": 11}}),
    ("degraded", {"name": "degraded",
                  "background": {"rate": 150, "size": "2M", "max_flows": 48,
                                 "seed": 11},
                  "link_degradation": {"factor": 0.5, "start": 0.0,
                                       "until": 0.5}}),
]


def foreground_application() -> Application:
    app = Application(num_tasks=NUM_HOSTS, name="ring-allgather-16")
    return ring_allgather(app, MESSAGE_SIZE)


def run_level(spec: InterferenceSpec):
    cluster = custom_cluster(num_nodes=NUM_HOSTS, cores_per_node=1,
                             technology="ethernet")
    injectors = spec.build_injectors(seed=0)
    simulator = Simulator.predictive(
        cluster, config=EngineConfig(injectors=injectors)
    )
    started = time.perf_counter()
    report = simulator.run(foreground_application(), placement="RRN")
    elapsed = time.perf_counter() - started
    return report, elapsed, simulator.last_engine_stats


def test_interference_slowdown_ladder(emit):
    clean_report, clean_time, clean_stats = run_level(InterferenceSpec())

    rows = []
    records = []
    for name, data in LEVELS:
        spec = InterferenceSpec.from_dict(data)
        report, elapsed, stats = run_level(spec)
        slowdown = report.total_time / clean_report.total_time
        rows.append((name, report.total_time, slowdown,
                     stats["background_flows"], stats["rate_updates"],
                     elapsed))
        records.append({
            "interference": name,
            "foreground_time_s": report.total_time,
            "slowdown": round(slowdown, 4),
            "background_flows": stats["background_flows"],
            "injected_events": stats["injected_events"],
            "rate_updates": stats["rate_updates"],
            "wall_clock_s": round(elapsed, 4),
        })
        if name == "off":
            # acceptance: disabled injectors are bit-exact, not approximate
            assert report.records == clean_report.records
            assert report.total_time == clean_report.total_time

    lines = [
        f"foreground: ring-allgather, {NUM_HOSTS} hosts, "
        f"{MESSAGE_SIZE // MB} MB messages, gigabit-ethernet model",
        f"clean fabric: {clean_report.total_time:.4f} s foreground makespan",
        "",
        (f"{'interference':<14s}{'fg time':>10s}{'slowdown':>10s}"
         f"{'bg flows':>10s}{'rate upd':>10s}{'wall clock':>12s}"),
    ]
    for name, fg_time, slowdown, flows, updates, elapsed in rows:
        lines.append(
            f"{name:<14s}{fg_time:>9.4f}s{slowdown:>9.2f}x"
            f"{flows:>10d}{updates:>10d}{elapsed:>10.3f} s"
        )
    record = {
        "benchmark": "bench_interference",
        "num_hosts": NUM_HOSTS,
        "foreground": "ring-allgather",
        "clean_time_s": clean_report.total_time,
        "clean_wall_clock_s": round(clean_time, 4),
        "clean_rate_updates": clean_stats["rate_updates"],
        "levels": records,
    }
    emit("interference", "\n".join(lines), record=record, bench_json=BENCH_JSON)

    by_name = {r["interference"]: r for r in records}
    # acceptance: interference slows the foreground, and more interference
    # slows it more (the flows are seeded, so this ladder is deterministic)
    assert by_name["off"]["slowdown"] == 1.0
    assert by_name["light"]["slowdown"] > 1.0
    assert by_name["heavy"]["slowdown"] > by_name["light"]["slowdown"]
    assert by_name["degraded"]["slowdown"] > by_name["light"]["slowdown"]
