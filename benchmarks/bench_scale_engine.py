"""Scale benchmark — incremental contention engine vs full recomputation,
delta-driven event calendar vs per-step full re-query, and tracing overhead.

A 64-node synthetic iterative workload (per-group fan-ins plus an
inter-group leader ring, the communication skeleton of LINPACK-style
iterations) is run through the fluid transfer simulator twice: once with the
historical rebuild-everything :class:`ModelRateProvider` and once with the
incremental engine (component-scoped re-pricing + memoized snapshots).  The
two must produce identical completion times; the benchmark reports the
model-evaluation counts and wall-clock times, asserts the ≥3× evaluation
reduction the refactor promises, and appends the numbers to
``BENCH_scale_engine.json`` at the repository root so the perf trajectory
accumulates across PRs.

The **engine-events** section measures the execution loop itself: with the
delta rate contract the calendar re-prices/re-times only the transfers of
the conflict components each arrival/departure dirties, while the
full-requery loop touches every active transfer every step.  Per-event
engine work (rate entries applied per flush) must drop ≥5× on the
64-host / 384-transfer scenario, with identical completion records.

The **tracing-overhead** section runs the same 64-host / 384-transfer
scenario untraced, with a :class:`~repro.trace.NullTraceSink` (must be
free: it normalises to the untraced path) and with a live
:class:`~repro.trace.JsonlTraceSink`, asserting bit-identical results and
recording the relative wall-clock overhead of the JSONL sink — the
reproduction's analogue of the paper's ~0.7 % MPE instrumentation cost
(§VI.D), tracked in ``BENCH_scale_engine.json`` so it stays visible in the
perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import GigabitEthernetModel
from repro.network.fluid import FluidTransferSimulator, Transfer
from repro.simulator.providers import ModelRateProvider

NUM_HOSTS = 64
GROUP_SIZE = 8
ITERATIONS = 6
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale_engine.json"


def _append_bench_record(record: dict) -> None:
    """Append one result record to the cross-PR perf trajectory file."""
    history = []
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            history = []
    history.append(record)
    BENCH_JSON.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def synthetic_workload(num_hosts: int = NUM_HOSTS, group_size: int = GROUP_SIZE,
                       iterations: int = ITERATIONS):
    """Deterministic iterative transfer set on ``num_hosts`` nodes.

    Every iteration: the members of each group send to their leader
    (fan-in contention at the leader NIC) and each leader forwards to the
    next group's leader.  Start times and sizes are staggered so arrivals
    and departures interleave — every event dirties only the touched
    group's conflict component.
    """
    assert num_hosts % group_size == 0
    num_groups = num_hosts // group_size
    transfers = []
    tid = 0
    period = 1.0
    for iteration in range(iterations):
        base = iteration * period
        for group in range(num_groups):
            leader = group * group_size
            for member in range(1, group_size):
                host = leader + member
                transfers.append(Transfer(
                    transfer_id=tid, src=host, dst=leader,
                    size=200_000.0 + 10_000.0 * member,
                    start_time=base + 0.003 * member + 0.0007 * group,
                ))
                tid += 1
            next_leader = ((group + 1) % num_groups) * group_size
            transfers.append(Transfer(
                transfer_id=tid, src=leader, dst=next_leader,
                size=400_000.0, start_time=base + 0.001 * group,
            ))
            tid += 1
    return transfers


def run_mode(incremental: bool):
    provider = ModelRateProvider(GigabitEthernetModel(), "ethernet",
                                 incremental=incremental)
    simulator = FluidTransferSimulator(provider)
    workload = synthetic_workload()
    started = time.perf_counter()
    results = simulator.run(workload)
    elapsed = time.perf_counter() - started
    return results, elapsed, provider.stats.snapshot()


def test_incremental_engine_scales(emit):
    full_results, full_time, full_stats = run_mode(incremental=False)
    inc_results, inc_time, inc_stats = run_mode(incremental=True)

    # optimisation, not approximation: identical completion records
    assert inc_results == full_results

    eval_ratio = full_stats["comm_evaluations"] / max(1, inc_stats["comm_evaluations"])
    speedup = full_time / inc_time if inc_time > 0 else float("inf")

    lines = [
        f"synthetic workload: {NUM_HOSTS} hosts, {ITERATIONS} iterations, "
        f"{len(synthetic_workload())} transfers",
        "",
        f"{'mode':<14s}{'comm evals':>12s}{'cache hits':>12s}{'wall clock':>14s}",
        (f"{'full':<14s}{full_stats['comm_evaluations']:>12d}"
         f"{full_stats['cache_hits']:>12d}{full_time:>12.3f} s"),
        (f"{'incremental':<14s}{inc_stats['comm_evaluations']:>12d}"
         f"{inc_stats['cache_hits']:>12d}{inc_time:>12.3f} s"),
        "",
        f"model-evaluation reduction: {eval_ratio:.1f}x   wall-clock speedup: {speedup:.2f}x",
    ]
    emit("scale_engine", "\n".join(lines))

    record = {
        "benchmark": "bench_scale_engine",
        "num_hosts": NUM_HOSTS,
        "iterations": ITERATIONS,
        "transfers": len(synthetic_workload()),
        "full": {"wall_clock_s": round(full_time, 4), **full_stats},
        "incremental": {"wall_clock_s": round(inc_time, 4), **inc_stats},
        "eval_ratio": round(eval_ratio, 2),
        "wall_clock_speedup": round(speedup, 2),
    }
    _append_bench_record(record)

    # acceptance: >=3x fewer model evaluations.  The wall-clock win is
    # recorded (CHANGES.md / BENCH_scale_engine.json) but deliberately not
    # asserted: on a ~0.1 s workload a loaded CI runner can invert the
    # timings without any code regression, while the evaluation count is
    # deterministic.
    assert eval_ratio >= 3.0, record


def run_calendar_mode(delta: bool):
    provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
    simulator = FluidTransferSimulator(provider, delta=delta)
    workload = synthetic_workload()
    started = time.perf_counter()
    results = simulator.run(workload)
    elapsed = time.perf_counter() - started
    return results, elapsed, simulator.last_calendar_stats


def test_engine_event_calendar_scales(emit):
    """Engine-events section: per-event work follows dirtied components."""
    full_results, full_time, full_stats = run_calendar_mode(delta=False)
    delta_results, delta_time, delta_stats = run_calendar_mode(delta=True)

    # optimisation, not approximation: identical completion records
    assert delta_results == full_results

    per_event_full = full_stats["rate_updates"] / max(1, full_stats["flushes"])
    per_event_delta = delta_stats["rate_updates"] / max(1, delta_stats["flushes"])
    work_ratio = per_event_full / max(1e-9, per_event_delta)
    retime_ratio = full_stats["retimed"] / max(1, delta_stats["retimed"])
    speedup = full_time / delta_time if delta_time > 0 else float("inf")

    lines = [
        f"engine events: {NUM_HOSTS} hosts, {len(synthetic_workload())} transfers",
        "",
        (f"{'mode':<14s}{'flushes':>9s}{'rate updates':>14s}{'re-timed':>10s}"
         f"{'per-event':>11s}{'wall clock':>13s}"),
        (f"{'full-requery':<14s}{full_stats['flushes']:>9d}"
         f"{full_stats['rate_updates']:>14d}{full_stats['retimed']:>10d}"
         f"{per_event_full:>11.1f}{full_time:>11.3f} s"),
        (f"{'delta':<14s}{delta_stats['flushes']:>9d}"
         f"{delta_stats['rate_updates']:>14d}{delta_stats['retimed']:>10d}"
         f"{per_event_delta:>11.1f}{delta_time:>11.3f} s"),
        "",
        (f"per-event work reduction: {work_ratio:.1f}x   "
         f"re-timing reduction: {retime_ratio:.1f}x   "
         f"wall-clock speedup: {speedup:.2f}x"),
    ]
    emit("engine_events", "\n".join(lines))

    record = {
        "benchmark": "bench_scale_engine/engine_events",
        "num_hosts": NUM_HOSTS,
        "transfers": len(synthetic_workload()),
        "full_requery": {"wall_clock_s": round(full_time, 4), **full_stats},
        "delta": {"wall_clock_s": round(delta_time, 4), **delta_stats},
        "per_event_work_ratio": round(work_ratio, 2),
        "retime_ratio": round(retime_ratio, 2),
        "wall_clock_speedup": round(speedup, 2),
    }
    _append_bench_record(record)

    # acceptance: per-event engine work scales with dirtied components, not
    # the active-set size.  Wall-clock is recorded but (as above) not
    # asserted — the evaluation counters are deterministic, CI timing isn't.
    assert work_ratio >= 5.0, record


def run_traced(trace_path=None, null_sink=False, repeats=5):
    """Best-of-``repeats`` run of the scale workload under one sink mode.

    Returns the in-run wall clock (the instrumentation perturbation — what
    the paper's 0.7 % measures) and the close/write-out time separately:
    the JSONL sink buffers MPE-style during the run and serialises at
    close, exactly like MPE dumps its log at finalize.
    """
    from repro.trace import JsonlTraceSink, NullTraceSink

    workload = synthetic_workload()
    best = float("inf")
    close_time = 0.0
    results = None
    emitted = 0
    for _ in range(repeats):
        if trace_path is not None:
            sink = JsonlTraceSink(trace_path)
        elif null_sink:
            sink = NullTraceSink()
        else:
            sink = None
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider, trace=sink)
        started = time.perf_counter()
        results = simulator.run(workload)
        elapsed = time.perf_counter() - started
        if sink is not None:
            close_started = time.perf_counter()
            sink.close()
            if elapsed < best:
                close_time = time.perf_counter() - close_started
            emitted = getattr(sink, "emitted", 0)
        best = min(best, elapsed)
    return results, best, close_time, emitted


def test_tracing_overhead(emit, tmp_path):
    """Tracing-overhead section: null sink free, JSONL sink ~1 us/record.

    On this worst-case micro-scenario (7.5 records per transfer over a
    fully-memoized ~18 ms base run) that per-record cost shows up as
    roughly 10-25 % wall-clock; the tracked quantities are the recorded
    percentage and `jsonl_us_per_record`.
    """
    base_results, base_time, _, _ = run_traced()
    null_results, null_time, _, _ = run_traced(null_sink=True)
    trace_path = tmp_path / "scale-engine.jsonl"
    jsonl_results, jsonl_time, close_time, emitted = run_traced(
        trace_path=trace_path)

    # observability, not physics: identical completion records in all modes
    assert null_results == base_results
    assert jsonl_results == base_results
    assert emitted > len(synthetic_workload())  # the trace saw the run

    null_overhead = null_time / base_time - 1.0
    jsonl_overhead = jsonl_time / base_time - 1.0
    per_record_us = max(0.0, jsonl_time - base_time) / max(1, emitted) * 1e6
    trace_bytes = trace_path.stat().st_size

    lines = [
        f"tracing overhead: {NUM_HOSTS} hosts, {len(synthetic_workload())} "
        f"transfers, {emitted} trace records ({trace_bytes} bytes)",
        "",
        f"{'sink':<12s}{'in-run':>12s}{'overhead':>10s}{'write-out':>12s}",
        f"{'none':<12s}{base_time:>10.4f} s{'-':>10s}{'-':>12s}",
        f"{'null':<12s}{null_time:>10.4f} s{null_overhead:>9.1%}{'-':>12s}",
        (f"{'jsonl':<12s}{jsonl_time:>10.4f} s{jsonl_overhead:>9.1%}"
         f"{close_time:>10.4f} s"),
        "",
        f"in-run emission cost: {per_record_us:.2f} us/record "
        f"({emitted / max(1, len(synthetic_workload())):.1f} records/transfer "
        "on this worst-case micro-scenario)",
        "in-run overhead is the instrumentation perturbation (the paper's "
        "~0.7% MPE figure, §VI.D);",
        "write-out is the buffered JSONL serialisation at close, off the "
        "simulated clock like MPE's finalize dump.",
    ]
    emit("tracing_overhead", "\n".join(lines))

    record = {
        "benchmark": "bench_scale_engine/tracing_overhead",
        "num_hosts": NUM_HOSTS,
        "transfers": len(synthetic_workload()),
        "trace_records": emitted,
        "trace_bytes": trace_bytes,
        "untraced_s": round(base_time, 4),
        "null_sink_s": round(null_time, 4),
        "jsonl_sink_s": round(jsonl_time, 4),
        "jsonl_close_s": round(close_time, 4),
        "null_overhead_pct": round(100 * null_overhead, 2),
        "jsonl_overhead_pct": round(100 * jsonl_overhead, 2),
        "jsonl_us_per_record": round(per_record_us, 3),
    }
    _append_bench_record(record)

    # acceptance: the JSONL sink's in-run perturbation stays around the
    # ~10% mark on this scenario.  The scenario is a deliberately brutal
    # denominator — ~7.5 records per transfer over a provider PRs 1-4
    # memoized down to ~20 ms of total work, so every microsecond of
    # record construction (the tracked `jsonl_us_per_record`, ~1 us) is
    # ~15 records/ms of visible overhead; real application runs (computes,
    # matching, un-memoized pricing) amortize the same cost well below the
    # paper's 0.7 % analogy.  The assert is a generous regression bound
    # (35%) following this file's convention of recording wall-clock but
    # asserting only what a loaded CI runner cannot invert.
    assert jsonl_overhead <= 0.35, record
