"""Scale benchmark — incremental contention engine vs full recomputation,
delta-driven event calendar vs per-step full re-query, and tracing overhead.

A 64-node synthetic iterative workload (per-group fan-ins plus an
inter-group leader ring, the communication skeleton of LINPACK-style
iterations) is run through the fluid transfer simulator twice: once with the
historical rebuild-everything :class:`ModelRateProvider` and once with the
incremental engine (component-scoped re-pricing + memoized snapshots).  The
two must produce identical completion times; the benchmark reports the
model-evaluation counts and wall-clock times, asserts the ≥3× evaluation
reduction the refactor promises, and appends the numbers to
``BENCH_scale_engine.json`` at the repository root so the perf trajectory
accumulates across PRs.

The **engine-events** section measures the execution loop itself: with the
delta rate contract the calendar re-prices/re-times only the transfers of
the conflict components each arrival/departure dirties, while the
full-requery loop touches every active transfer every step.  Per-event
engine work (rate entries applied per flush) must drop ≥5× on the
64-host / 384-transfer scenario, with identical completion records.

The **tracing-overhead** section runs the same 64-host / 384-transfer
scenario untraced, with a :class:`~repro.trace.NullTraceSink` (must be
free: it normalises to the untraced path) and with a live
:class:`~repro.trace.JsonlTraceSink`, asserting bit-identical results and
recording the relative wall-clock overhead of the JSONL sink — the
reproduction's analogue of the paper's ~0.7 % MPE instrumentation cost
(§VI.D), tracked in ``BENCH_scale_engine.json`` so it stays visible in the
perf trajectory.

The **metrics-overhead** section attaches a
:class:`~repro.obs.MetricsRegistry` to the same scenario — phase timers on
the calendar flush plus lazily-read stats sources — asserting bit-identical
results and recording the metering cost next to the tracing cost, with an
extra 1-in-8 sampled-timer row (``MetricsRegistry(timer_sample_every=8)``).

The **calendar-bookkeeping** section isolates what PR 8 vectorizes: a
churn workload (every flush re-rates the whole active set through a
zero-cost provider) driven through the scalar and the structure-of-arrays
:class:`~repro.network.fluid.TransferCalendar`, recording us/event,
retimes/event and heap ops/event per path.  The 256-host rung runs
everywhere with a conservative 2× regression assert (budget-gated like the
ladder via ``REPRO_LADDER_BUDGET_S``); the 1024-host rung — the tentpole's
≥3× acceptance — climbs with ``REPRO_LADDER_MAX_HOSTS``.

The **scale-ladder** sections climb the same synthetic skeleton to 256,
1024 and 4096 hosts (plus a LINPACK prediction and a small campaign
variant), recording one trajectory record per rung — the repository's
first ≥1k-host benchmark records.  The 256-host rung runs everywhere; the
heavier rungs are opt-in via ``REPRO_LADDER_MAX_HOSTS`` (CI runs the small
rung on every push with a wall-clock budget from
``REPRO_LADDER_BUDGET_S``).  The **vectorized-core** section measures the
numpy pricing paths of this PR directly: array water-filling vs the scalar
freeze loop at 4096 flows, and batched component pricing vs the per-
component loop — both asserted bit-exact, with the speedups recorded.

All wall-clock comparisons here are best-of-N (the work counters are
deterministic, the timings are not; N repeats stop a loaded runner from
inverting a comparison).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core import GigabitEthernetModel
from repro.network.fluid import FluidTransferSimulator, Transfer, TransferCalendar
from repro.simulator.providers import ModelRateProvider

NUM_HOSTS = 64
GROUP_SIZE = 8
ITERATIONS = 6
REPEATS = 3
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale_engine.json"

#: rungs above this host count are skipped (CI budget); raise via env to
#: climb the full ladder, e.g. REPRO_LADDER_MAX_HOSTS=4096
LADDER_MAX_HOSTS = int(os.environ.get("REPRO_LADDER_MAX_HOSTS", "256"))
#: optional wall-clock budget per ladder rung, in seconds (0 = record only)
LADDER_BUDGET_S = float(os.environ.get("REPRO_LADDER_BUDGET_S", "0") or 0.0)


def synthetic_workload(num_hosts: int = NUM_HOSTS, group_size: int = GROUP_SIZE,
                       iterations: int = ITERATIONS):
    """Deterministic iterative transfer set on ``num_hosts`` nodes.

    Every iteration: the members of each group send to their leader
    (fan-in contention at the leader NIC) and each leader forwards to the
    next group's leader.  Start times and sizes are staggered so arrivals
    and departures interleave — every event dirties only the touched
    group's conflict component.
    """
    assert num_hosts % group_size == 0
    num_groups = num_hosts // group_size
    transfers = []
    tid = 0
    period = 1.0
    for iteration in range(iterations):
        base = iteration * period
        for group in range(num_groups):
            leader = group * group_size
            for member in range(1, group_size):
                host = leader + member
                transfers.append(Transfer(
                    transfer_id=tid, src=host, dst=leader,
                    size=200_000.0 + 10_000.0 * member,
                    start_time=base + 0.003 * member + 0.0007 * group,
                ))
                tid += 1
            next_leader = ((group + 1) % num_groups) * group_size
            transfers.append(Transfer(
                transfer_id=tid, src=leader, dst=next_leader,
                size=400_000.0, start_time=base + 0.001 * group,
            ))
            tid += 1
    return transfers


def run_mode(incremental: bool, repeats: int = REPEATS):
    """Best-of-``repeats`` run of the scale workload under one provider mode.

    The work counters are deterministic (asserted below), so they come from
    the last repeat; only the wall clock is minimised over the repeats.
    """
    workload = synthetic_workload()
    best = float("inf")
    results = stats = None
    for _ in range(repeats):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet",
                                     incremental=incremental)
        simulator = FluidTransferSimulator(provider)
        started = time.perf_counter()
        results = simulator.run(workload)
        best = min(best, time.perf_counter() - started)
        snapshot = provider.stats.snapshot()
        assert stats is None or stats == snapshot  # counters are deterministic
        stats = snapshot
    return results, best, stats


def test_incremental_engine_scales(emit):
    full_results, full_time, full_stats = run_mode(incremental=False)
    inc_results, inc_time, inc_stats = run_mode(incremental=True)

    # optimisation, not approximation: identical completion records
    assert inc_results == full_results

    eval_ratio = full_stats["comm_evaluations"] / max(1, inc_stats["comm_evaluations"])
    speedup = full_time / inc_time if inc_time > 0 else float("inf")

    lines = [
        f"synthetic workload: {NUM_HOSTS} hosts, {ITERATIONS} iterations, "
        f"{len(synthetic_workload())} transfers",
        "",
        f"{'mode':<14s}{'comm evals':>12s}{'cache hits':>12s}{'wall clock':>14s}",
        (f"{'full':<14s}{full_stats['comm_evaluations']:>12d}"
         f"{full_stats['cache_hits']:>12d}{full_time:>12.3f} s"),
        (f"{'incremental':<14s}{inc_stats['comm_evaluations']:>12d}"
         f"{inc_stats['cache_hits']:>12d}{inc_time:>12.3f} s"),
        "",
        f"model-evaluation reduction: {eval_ratio:.1f}x   wall-clock speedup: {speedup:.2f}x",
    ]
    record = {
        "benchmark": "bench_scale_engine",
        "num_hosts": NUM_HOSTS,
        "iterations": ITERATIONS,
        "transfers": len(synthetic_workload()),
        "repeats": REPEATS,
        "vectorized": True,
        "full": {"wall_clock_s": round(full_time, 4), **full_stats},
        "incremental": {"wall_clock_s": round(inc_time, 4), **inc_stats},
        "eval_ratio": round(eval_ratio, 2),
        "wall_clock_speedup": round(speedup, 2),
    }
    emit("scale_engine", "\n".join(lines), record=record, bench_json=BENCH_JSON)

    # acceptance: >=3x fewer model evaluations.  The wall-clock win is
    # recorded (CHANGES.md / BENCH_scale_engine.json) but deliberately not
    # asserted: on a ~0.1 s workload a loaded CI runner can invert the
    # timings without any code regression, while the evaluation count is
    # deterministic.
    assert eval_ratio >= 3.0, record


def run_calendar_mode(delta: bool, repeats: int = REPEATS):
    workload = synthetic_workload()
    best = float("inf")
    results = stats = None
    for _ in range(repeats):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider, delta=delta)
        started = time.perf_counter()
        results = simulator.run(workload)
        best = min(best, time.perf_counter() - started)
        snapshot = simulator.last_calendar_stats
        assert stats is None or stats == snapshot  # counters are deterministic
        stats = snapshot
    return results, best, stats


def test_engine_event_calendar_scales(emit):
    """Engine-events section: per-event work follows dirtied components."""
    full_results, full_time, full_stats = run_calendar_mode(delta=False)
    delta_results, delta_time, delta_stats = run_calendar_mode(delta=True)

    # optimisation, not approximation: identical completion records
    assert delta_results == full_results

    per_event_full = full_stats["rate_updates"] / max(1, full_stats["flushes"])
    per_event_delta = delta_stats["rate_updates"] / max(1, delta_stats["flushes"])
    work_ratio = per_event_full / max(1e-9, per_event_delta)
    retime_ratio = full_stats["retimed"] / max(1, delta_stats["retimed"])
    speedup = full_time / delta_time if delta_time > 0 else float("inf")

    lines = [
        f"engine events: {NUM_HOSTS} hosts, {len(synthetic_workload())} transfers",
        "",
        (f"{'mode':<14s}{'flushes':>9s}{'rate updates':>14s}{'re-timed':>10s}"
         f"{'per-event':>11s}{'wall clock':>13s}"),
        (f"{'full-requery':<14s}{full_stats['flushes']:>9d}"
         f"{full_stats['rate_updates']:>14d}{full_stats['retimed']:>10d}"
         f"{per_event_full:>11.1f}{full_time:>11.3f} s"),
        (f"{'delta':<14s}{delta_stats['flushes']:>9d}"
         f"{delta_stats['rate_updates']:>14d}{delta_stats['retimed']:>10d}"
         f"{per_event_delta:>11.1f}{delta_time:>11.3f} s"),
        "",
        (f"per-event work reduction: {work_ratio:.1f}x   "
         f"re-timing reduction: {retime_ratio:.1f}x   "
         f"wall-clock speedup: {speedup:.2f}x"),
    ]
    record = {
        "benchmark": "bench_scale_engine/engine_events",
        "num_hosts": NUM_HOSTS,
        "transfers": len(synthetic_workload()),
        "repeats": REPEATS,
        "full_requery": {"wall_clock_s": round(full_time, 4), **full_stats},
        "delta": {"wall_clock_s": round(delta_time, 4), **delta_stats},
        "per_event_work_ratio": round(work_ratio, 2),
        "retime_ratio": round(retime_ratio, 2),
        "wall_clock_speedup": round(speedup, 2),
    }
    emit("engine_events", "\n".join(lines), record=record, bench_json=BENCH_JSON)

    # acceptance: per-event engine work scales with dirtied components, not
    # the active-set size.  Wall-clock is recorded but (as above) not
    # asserted — the evaluation counters are deterministic, CI timing isn't.
    assert work_ratio >= 5.0, record


def run_traced(trace_path=None, null_sink=False, repeats=5):
    """Best-of-``repeats`` run of the scale workload under one sink mode.

    Returns the in-run wall clock (the instrumentation perturbation — what
    the paper's 0.7 % measures) and the close/write-out time separately:
    the JSONL sink buffers MPE-style during the run and serialises at
    close, exactly like MPE dumps its log at finalize.
    """
    from repro.trace import JsonlTraceSink, NullTraceSink

    workload = synthetic_workload()
    best = float("inf")
    close_time = 0.0
    results = None
    emitted = 0
    for _ in range(repeats):
        if trace_path is not None:
            sink = JsonlTraceSink(trace_path)
        elif null_sink:
            sink = NullTraceSink()
        else:
            sink = None
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider, trace=sink)
        started = time.perf_counter()
        results = simulator.run(workload)
        elapsed = time.perf_counter() - started
        if sink is not None:
            close_started = time.perf_counter()
            sink.close()
            if elapsed < best:
                close_time = time.perf_counter() - close_started
            emitted = getattr(sink, "emitted", 0)
        best = min(best, elapsed)
    return results, best, close_time, emitted


def test_tracing_overhead(emit, tmp_path):
    """Tracing-overhead section: null sink free, JSONL sink ~1 us/record.

    On this worst-case micro-scenario (7.5 records per transfer over a
    fully-memoized ~18 ms base run) that per-record cost shows up as
    roughly 10-25 % wall-clock; the tracked quantities are the recorded
    percentage and `jsonl_us_per_record`.
    """
    base_results, base_time, _, _ = run_traced()
    null_results, null_time, _, _ = run_traced(null_sink=True)
    trace_path = tmp_path / "scale-engine.jsonl"
    jsonl_results, jsonl_time, close_time, emitted = run_traced(
        trace_path=trace_path)

    # observability, not physics: identical completion records in all modes
    assert null_results == base_results
    assert jsonl_results == base_results
    assert emitted > len(synthetic_workload())  # the trace saw the run

    null_overhead = null_time / base_time - 1.0
    jsonl_overhead = jsonl_time / base_time - 1.0
    per_record_us = max(0.0, jsonl_time - base_time) / max(1, emitted) * 1e6
    trace_bytes = trace_path.stat().st_size

    lines = [
        f"tracing overhead: {NUM_HOSTS} hosts, {len(synthetic_workload())} "
        f"transfers, {emitted} trace records ({trace_bytes} bytes)",
        "",
        f"{'sink':<12s}{'in-run':>12s}{'overhead':>10s}{'write-out':>12s}",
        f"{'none':<12s}{base_time:>10.4f} s{'-':>10s}{'-':>12s}",
        f"{'null':<12s}{null_time:>10.4f} s{null_overhead:>9.1%}{'-':>12s}",
        (f"{'jsonl':<12s}{jsonl_time:>10.4f} s{jsonl_overhead:>9.1%}"
         f"{close_time:>10.4f} s"),
        "",
        f"in-run emission cost: {per_record_us:.2f} us/record "
        f"({emitted / max(1, len(synthetic_workload())):.1f} records/transfer "
        "on this worst-case micro-scenario)",
        "in-run overhead is the instrumentation perturbation (the paper's "
        "~0.7% MPE figure, §VI.D);",
        "write-out is the buffered JSONL serialisation at close, off the "
        "simulated clock like MPE's finalize dump.",
    ]
    record = {
        "benchmark": "bench_scale_engine/tracing_overhead",
        "num_hosts": NUM_HOSTS,
        "transfers": len(synthetic_workload()),
        "trace_records": emitted,
        "trace_bytes": trace_bytes,
        "untraced_s": round(base_time, 4),
        "null_sink_s": round(null_time, 4),
        "jsonl_sink_s": round(jsonl_time, 4),
        "jsonl_close_s": round(close_time, 4),
        "null_overhead_pct": round(100 * null_overhead, 2),
        "jsonl_overhead_pct": round(100 * jsonl_overhead, 2),
        "jsonl_us_per_record": round(per_record_us, 3),
    }
    emit("tracing_overhead", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)

    # acceptance: the JSONL sink's in-run perturbation stays around the
    # ~10% mark on this scenario.  The scenario is a deliberately brutal
    # denominator — ~7.5 records per transfer over a provider PRs 1-4
    # memoized down to ~20 ms of total work, so every microsecond of
    # record construction (the tracked `jsonl_us_per_record`, ~1 us) is
    # ~15 records/ms of visible overhead; real application runs (computes,
    # matching, un-memoized pricing) amortize the same cost well below the
    # paper's 0.7 % analogy.  The assert is a generous regression bound
    # (35%) following this file's convention of recording wall-clock but
    # asserting only what a loaded CI runner cannot invert.
    assert jsonl_overhead <= 0.35, record


# ------------------------------------------------------------- scale ladder
LADDER_RUNGS = [256, 1024, 4096]
LADDER_ITERATIONS = 2


def _ladder_skip(num_hosts: int) -> None:
    if num_hosts > LADDER_MAX_HOSTS:
        pytest.skip(
            f"ladder rung {num_hosts} > REPRO_LADDER_MAX_HOSTS="
            f"{LADDER_MAX_HOSTS} (set the env var to climb the full ladder)"
        )


def _ladder_budget(elapsed: float, record: dict) -> None:
    if LADDER_BUDGET_S > 0:
        assert elapsed <= LADDER_BUDGET_S, record


@pytest.mark.parametrize("num_hosts", LADDER_RUNGS,
                         ids=lambda n: f"ladder_{n}")
def test_scale_ladder_synthetic(emit, num_hosts):
    """Synthetic fan-in/ring skeleton at 256/1024/4096 hosts."""
    _ladder_skip(num_hosts)
    workload = synthetic_workload(num_hosts=num_hosts, group_size=GROUP_SIZE,
                                  iterations=LADDER_ITERATIONS)
    best = float("inf")
    results = stats = None
    for _ in range(REPEATS):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider)
        started = time.perf_counter()
        results = simulator.run(workload)
        best = min(best, time.perf_counter() - started)
        stats = provider.stats.snapshot()
    assert len(results) == len(workload)  # every transfer completed

    per_transfer_us = best / len(workload) * 1e6
    lines = [
        f"scale ladder (synthetic): {num_hosts} hosts, "
        f"{LADDER_ITERATIONS} iterations, {len(workload)} transfers",
        "",
        f"wall clock (best of {REPEATS}): {best:.3f} s "
        f"({per_transfer_us:.1f} us/transfer)",
        f"comm evaluations: {stats['comm_evaluations']}   "
        f"cache hits: {stats['cache_hits']}",
    ]
    record = {
        "benchmark": "bench_scale_engine/scale_ladder",
        "workload": "synthetic",
        "num_hosts": num_hosts,
        "iterations": LADDER_ITERATIONS,
        "transfers": len(workload),
        "repeats": REPEATS,
        "vectorized": True,
        "wall_clock_s": round(best, 4),
        "us_per_transfer": round(per_transfer_us, 2),
        **stats,
    }
    emit(f"scale_ladder_{num_hosts}", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    _ladder_budget(best, record)


@pytest.mark.parametrize("num_ranks", [256, 1024],
                         ids=lambda n: f"ladder_linpack_{n}")
def test_scale_ladder_linpack(emit, num_ranks):
    """LINPACK prediction rung: a real application skeleton at ≥1k ranks."""
    _ladder_skip(num_ranks)
    from repro.cluster import custom_cluster
    from repro.simulator import Simulator
    from repro.workloads.linpack import generate_linpack

    problem_size = 32 * num_ranks
    app = generate_linpack(problem_size=problem_size, block_size=problem_size // 16,
                           num_tasks=num_ranks)
    cluster = custom_cluster(num_nodes=num_ranks, cores_per_node=1,
                             technology="ethernet")
    provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
    simulator = Simulator(cluster, provider)
    started = time.perf_counter()
    report = simulator.run(app, placement="RRN")
    elapsed = time.perf_counter() - started
    assert report.total_time > 0

    lines = [
        f"scale ladder (LINPACK): {num_ranks} ranks on {num_ranks} hosts, "
        f"N={problem_size}, NB={problem_size // 16}",
        "",
        f"wall clock: {elapsed:.3f} s   predicted makespan: "
        f"{report.total_time:.3f} s",
        f"comm evaluations: {provider.stats.comm_evaluations}   "
        f"cache hits: {provider.stats.cache_hits}",
    ]
    record = {
        "benchmark": "bench_scale_engine/scale_ladder",
        "workload": "linpack",
        "num_hosts": num_ranks,
        "problem_size": problem_size,
        "vectorized": True,
        "wall_clock_s": round(elapsed, 4),
        "predicted_makespan_s": round(report.total_time, 4),
        **provider.stats.snapshot(),
    }
    emit(f"scale_ladder_linpack_{num_ranks}", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    _ladder_budget(elapsed, record)


def test_scale_ladder_campaign(emit):
    """Campaign rung: a small parameter sweep at the 256-host rung."""
    _ladder_skip(256)
    from repro.campaign import CampaignRunner, CampaignSpec

    spec = CampaignSpec.from_dict({
        "name": "ladder-campaign",
        "workloads": [
            {"kind": "synthetic", "name": "random-tree", "params": {"size": "4M"}},
            {"kind": "collective", "name": "broadcast", "params": {"size": "1M"}},
        ],
        "networks": ["ethernet"],
        "models": ["auto"],
        "host_counts": [256],
        "placements": ["RRP"],
        "seeds": [0],
    })
    runner = CampaignRunner(spec, max_workers=1)
    started = time.perf_counter()
    store = runner.run()
    elapsed = time.perf_counter() - started
    assert len(store) >= 2

    lines = [
        f"scale ladder (campaign): {len(store)} scenarios at 256 hosts",
        "",
        f"wall clock: {elapsed:.3f} s",
    ]
    record = {
        "benchmark": "bench_scale_engine/scale_ladder",
        "workload": "campaign",
        "num_hosts": 256,
        "scenarios": len(store),
        "vectorized": True,
        "wall_clock_s": round(elapsed, 4),
    }
    emit("scale_ladder_campaign", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    _ladder_budget(elapsed, record)


# ---------------------------------------------------------- vectorized core
def test_vectorized_water_filling_microbench(emit):
    """Array vs scalar water-filling on a 4096-flow / 1024-host instance."""
    import random

    from repro.network.sharing import FlowSpec, weighted_max_min_allocation

    num_hosts, num_flows = 1024, 4096
    rng = random.Random(0)
    flows = []
    for index in range(num_flows):
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts)
        while dst == src:
            dst = rng.randrange(num_hosts)
        flows.append(FlowSpec(f"f{index}", (("tx", src), ("rx", dst)),
                              cap=9.6e7))
    capacities = {}
    for host in range(num_hosts):
        capacities[("tx", host)] = 1.19e8
        capacities[("rx", host)] = 1.19e8

    timings = {}
    rates = {}
    for vectorized in (False, True):
        best = float("inf")
        for _ in range(REPEATS):
            started = time.perf_counter()
            rates[vectorized] = weighted_max_min_allocation(
                flows, capacities, vectorized=vectorized)
            best = min(best, time.perf_counter() - started)
        timings[vectorized] = best
    # bit-exactness is the contract, not a tolerance
    assert rates[True] == rates[False]
    speedup = timings[False] / timings[True] if timings[True] > 0 else float("inf")

    lines = [
        f"vectorized water-filling: {num_flows} flows over "
        f"{2 * num_hosts} resources ({num_hosts} hosts)",
        "",
        f"{'path':<12s}{'wall clock':>14s}",
        f"{'scalar':<12s}{timings[False]:>12.3f} s",
        f"{'array':<12s}{timings[True]:>12.3f} s",
        "",
        f"speedup: {speedup:.1f}x   (rates bit-identical)",
    ]
    record = {
        "benchmark": "bench_scale_engine/vectorized_water_filling",
        "flows": num_flows,
        "num_hosts": num_hosts,
        "repeats": REPEATS,
        "scalar_s": round(timings[False], 4),
        "array_s": round(timings[True], 4),
        "speedup": round(speedup, 2),
    }
    emit("vectorized_water_filling", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    # generous regression bound: the array path must stay clearly ahead at
    # this size (observed ~14x; a loaded runner cannot invert an order of
    # magnitude)
    assert speedup >= 3.0, record


def test_vectorized_batch_pricing_microbench(emit):
    """Batched component pricing vs the per-component scalar loop."""
    from repro.core.graph import Communication, CommunicationGraph, ConflictRule

    model = GigabitEthernetModel()
    graph = CommunicationGraph(name="batch-bench")
    name = 0
    num_components = 1024
    for component in range(num_components):
        sink = 4 * component
        for member in range(1, 4):
            graph.add(Communication(name=f"c{name}", src=sink + member,
                                    dst=sink, size=1_000_000))
            name += 1
    selections = [list(names) for names
                  in graph.conflict_components(ConflictRule.ENDPOINT)]
    assert len(selections) == num_components

    timings = {}
    scalar = batched = None
    for mode in ("scalar", "batch"):
        best = float("inf")
        for _ in range(REPEATS):
            started = time.perf_counter()
            if mode == "scalar":
                scalar = [model.component_penalties(graph, names)
                          for names in selections]
            else:
                batched = model.penalties_batch(graph, selections)
            best = min(best, time.perf_counter() - started)
        timings[mode] = best
    assert batched == scalar
    speedup = (timings["scalar"] / timings["batch"]
               if timings["batch"] > 0 else float("inf"))

    lines = [
        f"vectorized batch pricing: {num_components} conflict components, "
        f"{len(graph)} communications, gigabit-ethernet model",
        "",
        f"{'path':<12s}{'wall clock':>14s}",
        f"{'scalar':<12s}{timings['scalar']:>12.4f} s",
        f"{'batch':<12s}{timings['batch']:>12.4f} s",
        "",
        f"speedup: {speedup:.1f}x   (penalties bit-identical)",
    ]
    record = {
        "benchmark": "bench_scale_engine/vectorized_batch_pricing",
        "components": num_components,
        "communications": len(graph),
        "repeats": REPEATS,
        "scalar_s": round(timings["scalar"], 4),
        "batch_s": round(timings["batch"], 4),
        "speedup": round(speedup, 2),
    }
    emit("vectorized_batch_pricing", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)


# ----------------------------------------------------- calendar bookkeeping
class ChurnProvider:
    """Cheap deterministic delta provider with bottleneck-local re-pricing.

    Models the rate-update profile an incremental allocator produces: every
    flush returns a rate for the *whole* tracked set (the dense delta
    contract the shipped providers follow), but only the flights sharing
    the perturbed bottleneck — one of ``GROUPS`` hash groups per call,
    plus any new arrivals — come back with a *changed* value.  The
    calendar must discover that subset itself: the scalar path compares
    flight by flight in Python, the vectorized path in one array compare —
    exactly the asymmetry PR 8's tentpole targets.  Pricing cost is near
    zero next to the calendar's own work (swap-remove churn, one
    vectorized rate-table recompute), so the bench isolates bookkeeping:
    value compare, integrate-at-old-rate, re-time, heap maintenance and
    compaction.  Implements both sides of the delta contract: ``update``
    returns the rate dict (the scalar pipeline), ``update_arrays`` the
    ``(tids, float64-rates)`` pair the vectorized calendar probes for —
    identical values, identical order.
    """

    #: one group is re-priced per call; 16 keeps the changed fraction at a
    #: bottleneck-local ~6% (coprime rate cycle below: repeat visits to the
    #: same group always produce a *different* value)
    GROUPS = 16

    def __init__(self):
        from repro._numpy import np

        self.calls = 0
        self.tracked = []                       # position-indexed tids
        self.pos = {}                           # tid -> position
        self.base = np.zeros(16, dtype=np.float64)    # static per-tid term
        self.mod16 = np.zeros(16, dtype=np.int64)     # tid % GROUPS
        self.slots = np.zeros(16, dtype=np.intp)      # calendar slot handles
        self.version = np.zeros(self.GROUPS, dtype=np.int64)

    def _apply(self, added, removed, added_slots=None):
        from repro._numpy import np

        self.calls += 1
        tracked, pos = self.tracked, self.pos
        base, mod16, slots = self.base, self.mod16, self.slots
        for tid in removed:
            i = pos.pop(tid)
            last = len(tracked) - 1
            if i != last:
                last_tid = tracked[last]
                tracked[i] = last_tid
                pos[last_tid] = i
                base[i] = base[last]
                mod16[i] = mod16[last]
                slots[i] = slots[last]
            tracked.pop()
        for j, transfer in enumerate(added):
            tid = transfer.transfer_id
            n = len(tracked)
            if n == len(base):
                self.base = base = np.concatenate([base, np.zeros(n)])
                self.mod16 = mod16 = np.concatenate(
                    [mod16, np.zeros(n, dtype=np.int64)])
                self.slots = slots = np.concatenate(
                    [slots, np.zeros(n, dtype=np.intp)])
            pos[tid] = n
            tracked.append(tid)
            base[n] = 1e6 * (1.0 + 0.03 * (tid % 13))
            mod16[n] = tid % self.GROUPS
            if added_slots is not None:
                slots[n] = added_slots[j]
        # one bottleneck group re-prices per call; the rate table comes out
        # of one vectorized add over the cached static term — flights of
        # untouched groups land on the exact same float64 value, so only
        # the perturbed group (and new arrivals) reads as changed.  7 is
        # coprime with GROUPS: repeat visits never collide.
        self.version[self.calls % self.GROUPS] += 1
        n = len(tracked)
        return base[:n] + 1e4 * (self.version[mod16[:n]] % 7)

    def update(self, added, removed):
        rates = self._apply(added, removed)
        # materialize the dict the scalar contract requires, in tracked
        # order (same order as the array handoffs, so entry sequence
        # numbers — and therefore pop order — match between the paths)
        return dict(zip(self.tracked, rates.tolist()))

    def update_arrays(self, added, removed):
        # identical float64 values, no dict round-trip
        return list(self.tracked), self._apply(added, removed)

    def update_slots(self, added, added_slots, removed):
        # slot-handle handoff: rates come back already slot-aligned
        rates = self._apply(added, removed, added_slots)
        return list(self.tracked), self.slots[:len(self.tracked)], rates

    def reset(self):
        from repro._numpy import np

        self.tracked = []
        self.pos = {}
        self.base = np.zeros(16, dtype=np.float64)
        self.mod16 = np.zeros(16, dtype=np.int64)
        self.slots = np.zeros(16, dtype=np.intp)
        self.version = np.zeros(self.GROUPS, dtype=np.int64)


CAL_BOOKKEEPING_ROUNDS = 50
#: best-of count for the bookkeeping section: the timed region is short
#: (milliseconds), so a couple of extra repeats buy a stable minimum
CAL_REPEATS = 5
#: heap-strategy counters — legitimately differ between the two paths
CAL_STRATEGY_COUNTERS = ("bulk_merges", "bulk_entries", "handoff_tier_slots",
                         "handoff_tier_arrays", "handoff_tier_dict")


def run_calendar_bookkeeping(num_flights: int, vectorized: bool,
                             repeats: int = CAL_REPEATS):
    """Best-of-``repeats`` churn run of one calendar path.

    ``num_flights`` concurrent transfers; every one of the
    ``CAL_BOOKKEEPING_ROUNDS`` rounds cancels the oldest flight, starts a
    replacement and flushes.  Each delta returns a rate for the *whole*
    tracked set (the dense contract), of which one bottleneck group
    (~``1/ChurnProvider.GROUPS``) plus the new arrival come back
    value-changed — the calendar must compare the full set and re-time
    exactly the changed subset every event.
    """
    assert num_flights >= CAL_BOOKKEEPING_ROUNDS
    best = float("inf")
    stats = done = None
    for _ in range(repeats):
        provider = ChurnProvider()
        calendar = TransferCalendar(provider, delta=True,
                                    vectorized=vectorized)
        for i in range(num_flights):
            calendar.activate(
                Transfer(i, i % 64, (i + 1) % 64, 1e12), now=0.0)
        calendar.flush(0.0)  # initial bulk rating, outside the timed churn
        started = time.perf_counter()
        for round_no in range(CAL_BOOKKEEPING_ROUNDS):
            now = 0.001 * (round_no + 1)
            calendar.cancel(round_no, now)
            calendar.activate(
                Transfer(num_flights + round_no, round_no % 64,
                         (round_no + 1) % 64, 1e12), now=now)
            calendar.flush(now)
            calendar.pop_due(now)
        best = min(best, time.perf_counter() - started)
        done = [t.transfer_id for t in calendar.pop_due(1e9)]
        snapshot = calendar.stats.snapshot()
        assert stats is None or stats == snapshot  # counters are deterministic
        stats = snapshot
    return done, best, stats


@pytest.mark.parametrize("num_hosts", [256, 1024],
                         ids=lambda n: f"bookkeeping_{n}")
def test_calendar_bookkeeping(emit, num_hosts):
    """Calendar-bookkeeping section: SoA flight state vs the scalar path.

    One flight per host; every flush re-prices the whole set and re-times
    the bottleneck-local changed subset.  The vectorized calendar must
    produce identical completions and identical work counters (minus the
    heap-insertion strategy counters, which only it increments) at a
    fraction of the bookkeeping time per event.  The 256-host rung runs
    everywhere under the ``REPRO_LADDER_BUDGET_S`` budget convention; the
    1024-host rung — the tentpole's ≥3× acceptance — is opt-in via
    ``REPRO_LADDER_MAX_HOSTS`` like the other heavy rungs.
    """
    _ladder_skip(num_hosts)
    scalar_done, scalar_time, scalar_stats = run_calendar_bookkeeping(
        num_hosts, vectorized=False)
    array_done, array_time, array_stats = run_calendar_bookkeeping(
        num_hosts, vectorized=True)

    # optimisation, not approximation: identical completions and identical
    # bookkeeping decisions
    assert array_done == scalar_done
    comparable = {k: v for k, v in scalar_stats.items()
                  if k not in CAL_STRATEGY_COUNTERS}
    assert {k: v for k, v in array_stats.items()
            if k not in CAL_STRATEGY_COUNTERS} == comparable

    flushes = max(1, array_stats["flushes"])
    retimed = max(1, array_stats["retimed"])
    heap_pops = array_stats["stale_entries"] + array_stats["completions"]
    speedup = scalar_time / array_time if array_time > 0 else float("inf")
    slot_fraction = array_stats["handoff_tier_slots"] / flushes
    # CI guard: the fastest tier must actually carry the steady state — the
    # vectorized run may not quietly downgrade to array/dict handoffs
    assert slot_fraction >= 0.9, array_stats

    lines = [
        f"calendar bookkeeping: {num_hosts} flights, "
        f"{CAL_BOOKKEEPING_ROUNDS} churn rounds "
        f"(dense re-pricing, ~1/{ChurnProvider.GROUPS} value-changed)",
        "",
        f"{'path':<12s}{'wall clock':>13s}{'us/event':>11s}{'us/retime':>11s}",
        (f"{'scalar':<12s}{scalar_time:>11.4f} s"
         f"{scalar_time / flushes * 1e6:>11.1f}"
         f"{scalar_time / retimed * 1e6:>11.2f}"),
        (f"{'array':<12s}{array_time:>11.4f} s"
         f"{array_time / flushes * 1e6:>11.1f}"
         f"{array_time / retimed * 1e6:>11.2f}"),
        "",
        (f"retimes/event: {retimed / flushes:.1f}   "
         f"heap pushes/event: {retimed / flushes:.1f}   "
         f"heap pops/event: {heap_pops / flushes:.1f}   "
         f"bulk merges: {array_stats['bulk_merges']}   "
         f"slot-tier flushes: {slot_fraction:.0%}"),
        f"bookkeeping speedup: {speedup:.1f}x   (completions and work "
        "counters identical)",
    ]
    record = {
        "benchmark": "bench_scale_engine/calendar_bookkeeping",
        "num_hosts": num_hosts,
        "flights": num_hosts,
        "rounds": CAL_BOOKKEEPING_ROUNDS,
        "reprice_groups": ChurnProvider.GROUPS,
        "repeats": CAL_REPEATS,
        "scalar_s": round(scalar_time, 4),
        "array_s": round(array_time, 4),
        "scalar_us_per_event": round(scalar_time / flushes * 1e6, 2),
        "array_us_per_event": round(array_time / flushes * 1e6, 2),
        "retimes_per_event": round(retimed / flushes, 2),
        "heap_pops_per_event": round(heap_pops / flushes, 2),
        "bulk_merges": array_stats["bulk_merges"],
        "bulk_entries": array_stats["bulk_entries"],
        "compactions": array_stats["compactions"],
        "handoff_tier_slots": array_stats["handoff_tier_slots"],
        "handoff_tier_arrays": array_stats["handoff_tier_arrays"],
        "handoff_tier_dict": array_stats["handoff_tier_dict"],
        "slot_tier_fraction": round(slot_fraction, 4),
        "speedup": round(speedup, 2),
    }
    emit(f"calendar_bookkeeping_{num_hosts}", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    _ladder_budget(scalar_time + array_time, record)

    # acceptance: ≥3× lower bookkeeping time per event at the 1k rung (the
    # tentpole target, opt-in like the other heavy rungs); the always-on
    # 256 rung — where fixed numpy dispatch overhead eats most of the win
    # (typically ~1.6×) — keeps a conservative regression bound a loaded
    # CI runner cannot invert
    assert speedup >= (3.0 if num_hosts >= 1024 else 1.25), record


# ------------------------------------------------------------ timeline drain
def test_timeline_drain_microbench(emit):
    """Batched due-event drain on barrier-synchronous compute waves.

    Every round, all ranks finish an identical compute at the same horizon
    and hit a barrier — the worst case for the historical per-entry
    ``heappop`` loop (one sift per rank per round) and the best case for the
    partition+heapify bulk sweep.  The section records how much of the
    timeline traffic the bulk path absorbed (pops/event, bulk-drain ratio)
    alongside the wall clock.
    """
    from repro.cluster import custom_cluster
    from repro.simulator import Application, Simulator

    num_ranks, rounds = 256, 12
    app = Application(num_tasks=num_ranks, name="drain-bench")
    for _ in range(rounds):
        for rank in range(num_ranks):
            app.add_compute(rank, duration=0.01)
        app.add_barrier()
    cluster = custom_cluster(num_nodes=num_ranks, cores_per_node=1,
                             technology="ethernet")

    best = float("inf")
    stats = None
    for _ in range(REPEATS):
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = Simulator(cluster, provider)
        started = time.perf_counter()
        report = simulator.run(app, placement="RRN")
        best = min(best, time.perf_counter() - started)
        assert report.total_time > 0
        snapshot = simulator.last_engine_stats.as_dict()
        assert stats is None or stats == snapshot  # counters are deterministic
        stats = snapshot

    total_events = num_ranks * rounds  # every compute surfaces exactly once
    drained_bulk = stats["timeline_bulk_drained"]
    single_pops = total_events - drained_bulk
    bulk_ratio = drained_bulk / total_events
    pops_per_event = single_pops / total_events

    lines = [
        f"timeline drain: {num_ranks} ranks x {rounds} barrier-synchronous "
        f"compute rounds ({total_events} timeline events)",
        "",
        f"wall clock (best of {REPEATS}): {best:.3f} s",
        (f"bulk drains: {stats['timeline_bulk_drains']}   "
         f"entries via bulk sweep: {drained_bulk} "
         f"({bulk_ratio:.0%})   per-entry heappops/event: "
         f"{pops_per_event:.2f}"),
    ]
    record = {
        "benchmark": "bench_scale_engine/timeline_drain",
        "num_ranks": num_ranks,
        "rounds": rounds,
        "timeline_events": total_events,
        "repeats": REPEATS,
        "wall_clock_s": round(best, 4),
        "timeline_bulk_drains": stats["timeline_bulk_drains"],
        "timeline_bulk_drained": drained_bulk,
        "bulk_drain_ratio": round(bulk_ratio, 4),
        "pops_per_event": round(pops_per_event, 2),
        "us_per_event": round(best / total_events * 1e6, 2),
    }
    emit("timeline_drain", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)
    # the same-horizon waves must actually take the bulk path: every round's
    # compute batch beyond the pop threshold lands in one sweep
    assert stats["timeline_bulk_drains"] >= rounds, record
    assert bulk_ratio >= 0.5, record


# --------------------------------------------------------- metrics overhead
def run_metered(metered: bool, repeats: int = 5, sample_every: int = 1):
    """Best-of-``repeats`` run of the scale workload with/without a registry.

    A fresh :class:`~repro.obs.MetricsRegistry` per repeat (timer moments
    are per-run); the snapshot comes from the last repeat — its counter
    values are deterministic, only the timer durations jitter.
    """
    from repro.obs import MetricsRegistry

    workload = synthetic_workload()
    best = float("inf")
    results = snapshot = None
    for _ in range(repeats):
        metrics = (MetricsRegistry(timer_sample_every=sample_every)
                   if metered else None)
        provider = ModelRateProvider(GigabitEthernetModel(), "ethernet")
        simulator = FluidTransferSimulator(provider, metrics=metrics)
        started = time.perf_counter()
        results = simulator.run(workload)
        best = min(best, time.perf_counter() - started)
        if metrics is not None:
            snapshot = metrics.snapshot()
    return results, best, snapshot


def test_metrics_overhead(emit):
    """Metrics-overhead section: the unified registry on the hot loop.

    With a registry attached the calendar pays two ``perf_counter`` calls
    per flush (the ``calendar.flush_s`` phase timer) and the provider's
    stats surfaces are registered as lazy sources (zero per-event cost).
    The results must stay bit-identical; the recorded quantity is the
    relative wall-clock overhead of metering the same worst-case
    micro-scenario the tracing-overhead section uses.
    """
    base_results, base_time, _ = run_metered(metered=False)
    metered_results, metered_time, snapshot = run_metered(metered=True)
    sampled_results, sampled_time, sampled_snap = run_metered(
        metered=True, sample_every=8)

    # observability, not physics: identical completion records
    assert metered_results == base_results
    assert sampled_results == base_results
    # the registry actually observed the run it did not perturb
    assert snapshot["calendar.flushes"] > 0
    assert snapshot["calendar.flush_s.count"] > 0
    # the sampled timer observed exactly every 8th flush() call
    assert sampled_snap["calendar.flush_s.sample_every"] == 8
    assert (sampled_snap["calendar.flush_s.count"]
            == int(snapshot["calendar.flush_s.count"]) // 8)

    overhead = metered_time / base_time - 1.0
    sampled_overhead = sampled_time / base_time - 1.0
    flushes = int(snapshot["calendar.flush_s.count"])
    per_flush_us = max(0.0, metered_time - base_time) / max(1, flushes) * 1e6

    lines = [
        f"metrics overhead: {NUM_HOSTS} hosts, {len(synthetic_workload())} "
        f"transfers, {flushes} timed flushes",
        "",
        f"{'registry':<14s}{'in-run':>12s}{'overhead':>10s}",
        f"{'none':<14s}{base_time:>10.4f} s{'-':>10s}",
        f"{'attached':<14s}{metered_time:>10.4f} s{overhead:>9.1%}",
        f"{'sampled 1/8':<14s}{sampled_time:>10.4f} s{sampled_overhead:>9.1%}",
        "",
        f"timer cost: {per_flush_us:.2f} us/flush "
        f"(flush time recorded: {snapshot['calendar.flush_s.total']:.4f} s); "
        f"1-in-8 sampling timed {int(sampled_snap['calendar.flush_s.count'])} "
        "flushes",
    ]
    record = {
        "benchmark": "bench_scale_engine/metrics_overhead",
        "num_hosts": NUM_HOSTS,
        "transfers": len(synthetic_workload()),
        "timed_flushes": flushes,
        "unmetered_s": round(base_time, 4),
        "metered_s": round(metered_time, 4),
        "sampled_s": round(sampled_time, 4),
        "timer_sample_every": 8,
        "sampled_timed_flushes": int(sampled_snap["calendar.flush_s.count"]),
        "metrics_overhead_pct": round(100 * overhead, 2),
        "sampled_overhead_pct": round(100 * sampled_overhead, 2),
        "us_per_flush": round(per_flush_us, 3),
        "flush_s_total": round(snapshot["calendar.flush_s.total"], 5),
    }
    emit("metrics_overhead", "\n".join(lines), record=record,
         bench_json=BENCH_JSON)

    # acceptance: following this file's convention, bit-exactness and the
    # deterministic counters are asserted; the wall-clock overhead is
    # recorded with a generous regression bound a loaded runner cannot
    # invert (two perf_counter calls per flush measure well under 5 %).
    assert overhead <= 0.35, record
