"""Ablation A3 — impact of the task placement policy (RRN / RRP / Random).

The paper evaluates its models under three placements (§VI.D) but does not
compare the placements themselves; this ablation uses the predictive
simulator as the HPC-integrator tool the introduction motivates: for the same
HPL trace and the same cluster, how much does the placement change the total
time and the contention level?
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.cluster import custom_cluster
from repro.core import PenaltyCache
from repro.network import EmulatorRateProvider
from repro.network.topology import CrossbarTopology
from repro.simulator import Simulator
from repro.workloads import generate_linpack

PLACEMENTS = ("RRN", "RRP", "random")


def sweep_placements():
    cluster = custom_cluster(num_nodes=8, cores_per_node=2, technology="myrinet")
    app = generate_linpack(problem_size=6000, block_size=200, num_tasks=16)
    # one rate cache shared by the per-placement providers: the three runs
    # revisit many of the same sharing situations
    cache = PenaltyCache()
    rows = []
    hits = 0
    for placement in PLACEMENTS:
        topology = CrossbarTopology(num_hosts=cluster.num_nodes,
                                    technology=cluster.technology)
        provider = EmulatorRateProvider(cluster.technology, topology, cache=cache)
        sim = Simulator(cluster, provider, technology=cluster.technology,
                        mode="emulated",
                        model_name=f"emulator[{cluster.technology.name}]")
        report = sim.run(app, placement=placement, seed=3)
        comm = sum(report.communication_times().values())
        rows.append((placement, report.total_time, comm, report.average_penalty,
                     report.max_penalty))
        hits += provider.cache_hits
    return rows, hits


@pytest.mark.benchmark(group="ablation-scheduling", min_rounds=1, max_time=1.0, warmup=False)
def test_ablation_placement_policies(benchmark, emit):
    rows, shared_hits = benchmark.pedantic(sweep_placements, rounds=1, iterations=1)
    table = render_table(
        ["placement", "total time [s]", "sum comm [s]", "avg penalty", "max penalty"],
        [list(r) for r in rows],
        title="Ablation A3 - HPL N=6000 on the emulated Myrinet cluster",
        float_format="{:.3f}",
    )
    table += f"\n\nshared rate cache: {shared_hits} hits across the placement sweep"
    emit("ablation_scheduling", table)

    # the shared cache must pool allocations across placements
    assert shared_hits > 0

    by_policy = {r[0]: r for r in rows}
    # RRP keeps the ring neighbours on the same node, so its communication
    # volume over the network (and usually its total time) is the smallest
    assert by_policy["RRP"][2] <= by_policy["RRN"][2] + 1e-9
    assert all(r[3] >= 1.0 for r in rows)
