#!/usr/bin/env python3
"""HPC-integrator scenario: which interconnect for a given application?

The paper's introduction motivates the models as "important elements to help
an HPC integrator to propose a network solution for a set of applications".
This example plays that role: it takes two applications with very different
communication profiles — an HPL-like factorisation (large, mostly pipelined
messages) and a gather-heavy analytics step (many-to-one hot spot) — and uses
the predictive simulator to estimate their run time on the paper's three
cluster types, without running anything on real hardware.

Run with::

    python examples/network_selection.py
"""

from __future__ import annotations

from repro import Simulator, custom_cluster
from repro.analysis import render_table
from repro.simulator import Application
from repro.units import MB
from repro.workloads import flat_gather, generate_linpack, ring_allgather


def analytics_application(num_tasks: int = 16) -> Application:
    """A gather-heavy step: partial results funnel into rank 0, then spread back."""
    app = Application(num_tasks=num_tasks, name="analytics-gather")
    for rank in range(num_tasks):
        app.add_compute(rank, duration=0.05, label="local-reduce")
    flat_gather(app, root=0, size=8 * MB)
    app.add_barrier()
    ring_allgather(app, size=2 * MB)
    return app


def main() -> None:
    applications = {
        "HPL (N=8000, 16 tasks)": generate_linpack(problem_size=8000, block_size=200,
                                                   num_tasks=16),
        "analytics gather (16 tasks)": analytics_application(16),
    }
    networks = ("ethernet", "myrinet", "infiniband")

    rows = []
    for app_label, app in applications.items():
        row = [app_label]
        for network in networks:
            cluster = custom_cluster(num_nodes=8, cores_per_node=2, technology=network)
            simulator = Simulator.predictive(cluster)   # model matching the interconnect
            report = simulator.run(app, placement="RRP")
            row.append(report.total_time)
        rows.append(row)

    print(render_table(
        ["application", "GigE [s]", "Myrinet [s]", "InfiniBand [s]"],
        rows,
        title="Predicted application run time per interconnect (8 nodes x 2 cores)",
        float_format="{:.2f}",
    ))

    print()
    print("Contention profile of the gather step on each network:")
    gather = applications["analytics gather (16 tasks)"]
    for network in networks:
        cluster = custom_cluster(num_nodes=8, cores_per_node=2, technology=network)
        report = Simulator.predictive(cluster).run(gather, placement="RRP")
        print(f"  {network:<12s} average penalty {report.average_penalty:5.2f}   "
              f"max penalty {report.max_penalty:5.2f}")


if __name__ == "__main__":
    main()
