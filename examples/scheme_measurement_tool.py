#!/usr/bin/env python3
"""The paper's measurement software, end to end (§IV.B + §V.A calibration).

Reads a communication scheme written in the description language, measures
its penalties on an emulated cluster with the penalty tool, compares them
with every model, and finally re-runs the paper's calibration protocol to
re-estimate (β, γo, γi) from scratch on the emulated Gigabit Ethernet card.

Run with::

    python examples/scheme_measurement_tool.py [network]
"""

from __future__ import annotations

import sys

from repro import GigabitEthernetModel, PenaltyTool, model_for_network, parse_scheme
from repro.analysis import render_table
from repro.core import FairShareModel, NoContentionModel, calibrate_from_measurer

SCHEME_TEXT = """
# A mixed conflict: node 0 fans out to three receivers while node 1 both
# forwards data to node 2 and feeds node 3, and node 4 targets node 3 too.
scheme mixed-conflict
size 20M
0 -> 1 : a
0 -> 2 : b
0 -> 3 : c
1 -> 2 : d
1 -> 3 : e
4 -> 3 : f
"""


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "ethernet"
    graph = parse_scheme(SCHEME_TEXT)
    print(graph.describe(), "\n")

    tool = PenaltyTool(network, iterations=3, num_hosts=16)
    measurement = tool.measure(graph)
    print(measurement.table(), "\n")

    models = {
        "paper model": model_for_network(network),
        "fair share": FairShareModel(),
        "no contention": NoContentionModel(),
    }
    rows = []
    for name in graph.names:
        row = [name, measurement.penalties[name]]
        for model in models.values():
            row.append(model.penalties(graph)[name])
        rows.append(row)
    print(render_table(["com.", "measured"] + list(models), rows,
                       title=f"Measured vs predicted penalties on {network}",
                       float_format="{:.2f}"), "\n")

    if network in ("ethernet", "gige", "gigabit-ethernet"):
        print("Re-running the paper's calibration protocol on the emulated card...")
        params = calibrate_from_measurer(tool.measure_penalties)
        print(f"  estimated beta    = {params.beta:.3f}   (paper: 0.750)")
        print(f"  estimated gamma_o = {params.gamma_o:.3f}   (paper: 0.115)")
        print(f"  estimated gamma_i = {params.gamma_i:.3f}   (paper: 0.036)")
        recalibrated = GigabitEthernetModel(params)
        print("  penalties with the re-estimated parameters:",
              {k: round(v, 2) for k, v in recalibrated.penalties(graph).items()})


if __name__ == "__main__":
    main()
