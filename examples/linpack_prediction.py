#!/usr/bin/env python3
"""Reproduce the paper's Linpack evaluation workflow (Figures 8 and 9).

The pipeline is the one of §VI.D:

1. generate the HPL communication trace (increasing-ring panel broadcast,
   shrinking panel sizes) — the stand-in for the paper's MPE trace;
2. "measure" it by running the trace on the emulated cluster;
3. predict it with the contention model of the interconnect;
4. compare the per-task sums of communication times (S_m vs S_p) and print
   the per-task absolute errors, for the three placements RRN / RRP / Random.

Run with::

    python examples/linpack_prediction.py [problem_size]
"""

from __future__ import annotations

import sys

from repro import Simulator, custom_cluster
from repro.analysis import compare_reports, per_task_error_table
from repro.workloads import apply_tracing_overhead, generate_linpack


def main() -> None:
    problem_size = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    num_tasks = 16
    cluster = custom_cluster(num_nodes=8, cores_per_node=2, technology="myrinet")

    print(f"Generating the HPL trace (N={problem_size}, NB=120, {num_tasks} tasks)...")
    application = apply_tracing_overhead(
        generate_linpack(problem_size=problem_size, block_size=120, num_tasks=num_tasks)
    )
    print(f"  {application.total_messages} messages, "
          f"{application.total_bytes / 1e9:.2f} GB moved\n")

    emulated = Simulator.emulated(cluster)          # the "real cluster" stand-in
    predicted = Simulator.predictive(cluster)       # the Myrinet state-set model

    for placement in ("RRN", "RRP", "random"):
        measured_report = emulated.run(application, placement=placement, seed=11)
        predicted_report = predicted.run(application, placement=placement, seed=11)
        errors = compare_reports(measured_report, predicted_report)
        print(per_task_error_table(
            errors.measured, errors.predicted,
            title=(f"HPL N={problem_size} on emulated Myrinet 2000 - placement {placement} "
                   f"(total time: measured {measured_report.total_time:.2f} s, "
                   f"predicted {predicted_report.total_time:.2f} s)"),
        ))
        print()


if __name__ == "__main__":
    main()
