#!/usr/bin/env python3
"""Quickstart: predict bandwidth-sharing penalties for a communication scheme.

This walks through the core workflow of the paper:

1. describe a set of concurrent MPI communications as a node-level graph,
2. classify the elementary conflicts (§IV.A),
3. predict the penalty of every communication with the Gigabit Ethernet,
   Myrinet and InfiniBand models (§V),
4. compare against the calibrated cluster emulator (the reproduction's
   stand-in for the real clusters), and
5. convert penalties into predicted transfer times.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ClusterEmulator,
    CommunicationGraph,
    GigabitEthernetModel,
    InfinibandModel,
    LinearCostModel,
    MyrinetModel,
    classify_graph,
    get_technology,
)
from repro.analysis import render_table
from repro.units import MB


def main() -> None:
    # ------------------------------------------------------------------ 1. scheme
    # Node 0 sends 20 MB to nodes 1, 2 and 3 while node 4 sends 20 MB to node 0
    # (scheme S4 of Figure 2: an outgoing conflict plus an income/outgo conflict).
    graph = CommunicationGraph(name="quickstart")
    graph.add_edge(0, 1, size=20 * MB, name="a")
    graph.add_edge(0, 2, size=20 * MB, name="b")
    graph.add_edge(0, 3, size=20 * MB, name="c")
    graph.add_edge(4, 0, size=20 * MB, name="d")
    print(graph.describe(), "\n")

    # ------------------------------------------------------------- 2. conflicts
    print(classify_graph(graph).summary(), "\n")

    # --------------------------------------------------------------- 3. models
    models = {
        "Gigabit Ethernet": GigabitEthernetModel(),
        "Myrinet 2000": MyrinetModel(),
        "InfiniBand": InfinibandModel(),
    }
    rows = []
    for comm in graph:
        rows.append([comm.name] + [models[m].penalties(graph)[comm.name] for m in models])
    print(render_table(["com."] + list(models), rows,
                       title="Predicted penalties (P = T_contended / T_alone)",
                       float_format="{:.2f}"), "\n")

    # -------------------------------------------------------------- 4. emulator
    rows = []
    for label, alias in (("Gigabit Ethernet", "ethernet"), ("Myrinet 2000", "myrinet"),
                         ("InfiniBand", "infiniband")):
        emulator = ClusterEmulator(alias, num_hosts=8)
        measured = emulator.measure_penalties(graph)
        rows.append([label] + [measured[name] for name in graph.names])
    print(render_table(["emulated cluster"] + list(graph.names), rows,
                       title="Measured penalties on the calibrated emulator",
                       float_format="{:.2f}"), "\n")

    # ------------------------------------------------------ 5. predicted times
    technology = get_technology("ethernet")
    cost = LinearCostModel(latency=technology.latency,
                           bandwidth=technology.single_stream_bandwidth,
                           envelope=technology.mpi_envelope)
    times = GigabitEthernetModel().predict_times(graph, cost)
    print("Predicted transfer times on Gigabit Ethernet:")
    for name, value in times.items():
        print(f"  {name}: {value * 1e3:7.1f} ms")


if __name__ == "__main__":
    main()
