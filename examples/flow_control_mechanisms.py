#!/usr/bin/env python3
"""Flow-control mechanisms from first principles (§III of the paper).

The contention models are motivated by the behaviour of the flow-control
mechanisms: Stop & Go on Myrinet serialises conflicting transfers, while
credit-based InfiniBand shares the HCA more gracefully.  This example runs
the packet-level discrete-event models of both mechanisms on the elementary
conflicts of §IV.A and shows that the qualitative penalties the paper's
models encode emerge from the mechanisms themselves — independently of the
calibrated emulator.

Run with::

    python examples/flow_control_mechanisms.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.network import (
    CreditBasedNetwork,
    INFINIBAND_INFINIHOST3,
    MYRINET_2000,
    StopAndGoNetwork,
    Transfer,
)
from repro.units import MB


def conflict_transfers(kind: str, degree: int):
    """Build the elementary conflicts of §IV.A as transfer lists."""
    if kind == "outgoing":
        return [Transfer(f"c{i}", 0, i + 1, 4 * MB) for i in range(degree)]
    if kind == "incoming":
        return [Transfer(f"c{i}", i + 1, 0, 4 * MB) for i in range(degree)]
    if kind == "income-outgo":
        transfers = [Transfer(f"out{i}", 0, i + 1, 4 * MB) for i in range(degree - 1)]
        transfers.append(Transfer("in", degree + 1, 0, 4 * MB))
        return transfers
    raise ValueError(kind)


def main() -> None:
    networks = {
        "Myrinet Stop&Go": StopAndGoNetwork(MYRINET_2000),
        "InfiniBand credits": CreditBasedNetwork(INFINIBAND_INFINIHOST3),
    }

    rows = []
    for kind in ("outgoing", "incoming", "income-outgo"):
        for degree in (2, 3, 4):
            transfers = conflict_transfers(kind, degree)
            row = [kind, degree]
            for net in networks.values():
                penalties = net.penalties(transfers)
                mean = sum(penalties.values()) / len(penalties)
                worst = max(penalties.values())
                row.append(f"{mean:.2f} / {worst:.2f}")
            rows.append(row)

    print(render_table(
        ["conflict", "degree"] + [f"{name} (mean/max)" for name in networks],
        rows,
        title="Penalties produced by the packet-level flow-control models",
    ))
    print(
        "\nReading: an outgoing conflict of degree k costs ~k on both mechanisms\n"
        "(the NIC is the bottleneck), which is what both contention models encode;\n"
        "the income/outgo coupling is what differentiates the technologies."
    )


if __name__ == "__main__":
    main()
