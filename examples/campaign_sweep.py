#!/usr/bin/env python3
"""Scenario campaigns: price a whole design space in one parallel run.

The paper's models answer one question per graph — *how slow does this
contention situation make each communication?* — but an HPC integrator asks
them by the hundreds: which network, which placement, which node count for
this mix of workloads?  The :mod:`repro.campaign` subsystem turns that sweep
into a single declarative **campaign spec**:

* ``workloads`` — library schemes (``kind="scheme"``), generated graphs
  (``kind="synthetic"``: random-tree / complete / random / bipartite-fan /
  hotspot) and simulated applications (``kind="collective"``:
  broadcast / ring-allgather / flat-gather / alltoall, or ``kind="linpack"``);
* ``networks`` / ``models`` — interconnects and contention models
  (``"auto"`` picks the paper's model for each network);
* ``host_counts`` / ``placements`` / ``seeds`` — cluster sizes, task
  placement policies (applications only) and generator seeds.

The cartesian product expands into concrete scenarios; the runner executes
them on a worker pool while sharing one penalty cache, so isomorphic
contention situations — ubiquitous across a sweep — are priced exactly once.
With a :class:`~repro.campaign.PersistentPenaltyCache` the cache also
survives the process: the second run of the same (or a similar) campaign
skips the model evaluations entirely.

The same sweep is available from the shell::

    python -m repro campaign --spec examples/campaign_sweep.json \
        --workers 4 --cache /tmp/penalties.json \
        --out /tmp/campaign.json --csv /tmp/campaign.csv

Run this file with::

    python examples/campaign_sweep.py
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign import CampaignRunner, CampaignSpec

SPEC_FILE = Path(__file__).with_name("campaign_sweep.json")


def main() -> None:
    spec = CampaignSpec.from_json(SPEC_FILE)
    scenarios = spec.scenarios()
    print(f"campaign {spec.name!r}: {len(scenarios)} scenarios from "
          f"{len(spec.workloads)} workloads × {len(spec.networks)} networks")

    runner = CampaignRunner(spec, max_workers=4, backend="thread")
    store = runner.run()

    print(store.summary_table())
    stats = store.stats
    print(f"\nmodel evaluations: {stats['comm_evaluations']} "
          f"(cache hits: {stats['cache_hits']}, misses: {stats['cache_misses']})")

    # the cheapest network per application workload, straight from the rows
    best: dict = {}
    for row in store.rows():
        if row["kind"] not in ("collective", "linpack"):
            continue
        key = (row["workload"], row["placement"], row["seed"])
        if key not in best or row["total_time"] < best[key][1]:
            best[key] = (row["network"], row["total_time"])
    print("\nfastest network per application scenario:")
    for (workload, placement, seed), (network, total) in sorted(best.items()):
        print(f"  {workload:<10s} {placement:<4s} seed {seed}: "
              f"{network:<10s} ({total:.3f} s)")


if __name__ == "__main__":
    main()
